package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"sortinghat/internal/core"
	"sortinghat/internal/data"
	"sortinghat/internal/obs"
	"sortinghat/internal/synth"
)

// testPipeline trains one small Random Forest per test binary; every test
// shares it read-only (prediction is concurrency-safe).
var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeErr  error
)

func testModel(t testing.TB) *core.Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		cfg := synth.DefaultCorpusConfig()
		cfg.N = 400
		opts := core.DefaultOptions()
		opts.RFTrees, opts.RFDepth = 10, 15
		pipe, pipeErr = core.Train(synth.GenerateCorpus(cfg), opts)
	})
	if pipeErr != nil {
		t.Fatalf("training test model: %v", pipeErr)
	}
	return pipe
}

// testBatch builds an n-column batch of deterministic synthetic columns.
func testBatch(n int) InferRequest {
	req := InferRequest{Columns: make([]InferColumn, n)}
	for i := range req.Columns {
		vals := make([]string, 48)
		for j := range vals {
			switch i % 3 {
			case 0:
				vals[j] = fmt.Sprintf("%d.%02d", j*7+i, j%100) // numeric-ish
			case 1:
				vals[j] = fmt.Sprintf("cat_%d", j%5) // categorical-ish
			default:
				vals[j] = fmt.Sprintf("2021-0%d-1%d", j%9+1, j%9) // datetime-ish
			}
		}
		req.Columns[i] = InferColumn{Name: fmt.Sprintf("col_%d", i), Values: vals}
	}
	return req
}

// injectFunc adapts a function to the fault-site Injector interface, the
// test-side replacement for reaching into server internals: faults enter
// through the same seam production chaos drills use.
type injectFunc func(site string) error

func (f injectFunc) Inject(site string) error { return f(site) }

// slowSite returns an injector that sleeps d at the named site.
func slowSite(site string, d time.Duration) Injector {
	return injectFunc(func(s string) error {
		if s == site {
			time.Sleep(d)
		}
		return nil
	})
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s := New(testModel(t), cfg)
	t.Cleanup(s.Close)
	return s
}

func postInfer(t *testing.T, h http.Handler, req InferRequest) (*httptest.ResponseRecorder, InferResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body)))
	var resp InferResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding response: %v\nbody: %s", err, rec.Body.Bytes())
		}
	}
	return rec, resp
}

// TestInfer64ColumnBatch serves a full 64-column table end-to-end and
// checks the response shape: aligned names, valid types, probabilities
// that sum to ~1 with the confidence matching the argmax entry.
func TestInfer64ColumnBatch(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	rec, resp := postInfer(t, s.Handler(), testBatch(64))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
	}
	if len(resp.Predictions) != 64 {
		t.Fatalf("got %d predictions, want 64", len(resp.Predictions))
	}
	if resp.Model != "OurRF" {
		t.Errorf("model = %q, want OurRF", resp.Model)
	}
	for i, p := range resp.Predictions {
		if want := fmt.Sprintf("col_%d", i); p.Name != want {
			t.Fatalf("prediction %d: name %q, want %q (results must stay index-aligned)", i, p.Name, want)
		}
		if len(p.Probs) == 0 {
			t.Fatalf("prediction %d: empty probs", i)
		}
		sum, best := 0.0, 0.0
		for _, v := range p.Probs {
			sum += v
			if v > best {
				best = v
			}
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("prediction %d: probs sum to %g, want ~1", i, sum)
		}
		if diff := p.Confidence - best; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("prediction %d: confidence %g != max prob %g", i, p.Confidence, best)
		}
		if _, ok := p.Probs[p.Type]; !ok {
			t.Errorf("prediction %d: predicted type %q missing from probs", i, p.Type)
		}
	}
}

// TestInferMatchesPipeline pins the serving path to the library path: the
// server must return exactly what Pipeline.Predict returns for the same
// columns, cache on or off.
func TestInferMatchesPipeline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3})
	req := testBatch(12)
	for pass := 0; pass < 2; pass++ { // second pass answers from cache
		_, resp := postInfer(t, s.Handler(), req)
		for i, c := range req.Columns {
			col := data.Column{Name: c.Name, Values: c.Values}
			wantType, _ := testModel(t).Predict(&col)
			if resp.Predictions[i].Type != wantType.String() {
				t.Errorf("pass %d, col %d: served %q, pipeline says %q",
					pass, i, resp.Predictions[i].Type, wantType)
			}
		}
	}
}

// TestCacheHitRate repeats one batch and requires the second pass to be
// answered from the cache, with /metrics reflecting the hits.
func TestCacheHitRate(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, CacheSize: 256})
	h := s.Handler()
	req := testBatch(20)

	_, first := postInfer(t, h, req)
	if first.CacheHits != 0 {
		t.Fatalf("first pass: %d cache hits, want 0", first.CacheHits)
	}
	_, second := postInfer(t, h, req)
	if second.CacheHits != 20 {
		t.Fatalf("second pass: %d cache hits, want 20", second.CacheHits)
	}
	for i, p := range second.Predictions {
		if !p.CacheHit {
			t.Errorf("second pass, col %d: cache_hit = false", i)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "sortinghatd_cache_hits_total 20\n") {
		t.Errorf("/metrics: want sortinghatd_cache_hits_total 20, got:\n%s", grepMetric(body, "sortinghatd_cache"))
	}
	if !strings.Contains(body, "sortinghatd_cache_misses_total 20\n") {
		t.Errorf("/metrics: want sortinghatd_cache_misses_total 20, got:\n%s", grepMetric(body, "sortinghatd_cache"))
	}
	if !strings.Contains(body, "sortinghatd_cache_entries 20\n") {
		t.Errorf("/metrics: want sortinghatd_cache_entries 20, got:\n%s", grepMetric(body, "sortinghatd_cache"))
	}
	if !strings.Contains(body, "sortinghatd_cache_evictions_total 0\n") {
		t.Errorf("/metrics: want sortinghatd_cache_evictions_total 0, got:\n%s", grepMetric(body, "sortinghatd_cache"))
	}
	if !strings.Contains(body, "sortinghatd_cache_capacity 256\n") {
		t.Errorf("/metrics: want sortinghatd_cache_capacity 256, got:\n%s", grepMetric(body, "sortinghatd_cache"))
	}
}

// grepMetric filters metrics output to lines containing substr, for
// readable failures.
func grepMetric(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestCacheDisabled verifies CacheSize<0 turns caching off entirely.
func TestCacheDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, CacheSize: -1})
	h := s.Handler()
	req := testBatch(4)
	postInfer(t, h, req)
	_, second := postInfer(t, h, req)
	if second.CacheHits != 0 {
		t.Fatalf("cache disabled but second pass had %d hits", second.CacheHits)
	}
}

// TestCacheKeyDistinguishesNameAndContent guards the cache identity: same
// values under a different attribute name, or a value boundary shift,
// must not collide.
func TestCacheKeyDistinguishesNameAndContent(t *testing.T) {
	a := data.Column{Name: "age", Values: []string{"ab", "c"}}
	b := data.Column{Name: "age2", Values: []string{"ab", "c"}}
	c := data.Column{Name: "age", Values: []string{"a", "bc"}}
	ka, kb, kc := columnKey(&a), columnKey(&b), columnKey(&c)
	if ka == kb {
		t.Error("columns differing only by name share a cache key")
	}
	if ka == kc {
		t.Error("columns differing by value boundaries share a cache key")
	}
	if ka != columnKey(&data.Column{Name: "age", Values: []string{"ab", "c"}}) {
		t.Error("identical columns hash differently")
	}
}

// TestColumnKeyMatchesStdlibFNV pins the hand-unrolled 128-bit FNV-1a in
// cache.go to the stdlib stream it replaced: fnv.New128a fed each string
// preceded by its big-endian 8-byte length. Any drift would silently
// invalidate (or worse, cross-wire) every cached prediction.
func TestColumnKeyMatchesStdlibFNV(t *testing.T) {
	cols := []data.Column{
		{Name: "", Values: nil},
		{Name: "age", Values: []string{"ab", "c"}},
		{Name: "zip", Values: []string{"", "02139", "Ärzte", "a\x00b"}},
		{Name: "long", Values: []string{strings.Repeat("x", 300)}},
	}
	for _, col := range cols {
		h := fnv.New128a()
		var lenBuf [8]byte
		write := func(s string) {
			binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
			h.Write(lenBuf[:]) //shvet:ignore unchecked-err hash.Hash Write never returns an error
			h.Write([]byte(s)) //shvet:ignore unchecked-err hash.Hash Write never returns an error
		}
		write(col.Name)
		for _, v := range col.Values {
			write(v)
		}
		var want cacheKey
		h.Sum(want[:0])
		if got := columnKey(&col); got != want {
			t.Errorf("columnKey(%q) = %x, want stdlib FNV-128a %x", col.Name, got, want)
		}
	}
}

// TestLRUEviction fills the cache past capacity and checks the oldest
// entry is evicted while recently used ones survive.
func TestLRUEviction(t *testing.T) {
	c := newPredCache(2)
	k := func(name string) versionedKey {
		return versionedKey{seq: 1, key: columnKey(&data.Column{Name: name})}
	}
	c.put(k("a"), cachedPrediction{})
	c.put(k("b"), cachedPrediction{})
	if _, ok := c.get(k("a")); !ok { // promote a; b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.put(k("c"), cachedPrediction{})
	if _, ok := c.get(k("b")); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if _, ok := c.get(k("a")); !ok {
		t.Error("a was promoted by get but still evicted")
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
	if got := c.evicted(); got != 1 {
		t.Errorf("evicted = %d, want 1", got)
	}
	var disabled *predCache
	if disabled.evicted() != 0 || disabled.capacity() != 0 {
		t.Error("nil cache must report zero evictions and capacity")
	}
}

// TestDeadlineExceeded slows the hot path past a tiny request deadline
// and requires a 504 plus a timeout counter increment.
func TestDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, Timeout: 30 * time.Millisecond, CacheSize: -1,
		Faults: slowSite("featurize", 25*time.Millisecond),
	})
	h := s.Handler()

	rec, _ := postInfer(t, h, testBatch(8)) // 8 columns × 25ms on 1 worker ≫ 30ms
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", rec.Code, rec.Body.Bytes())
	}

	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "sortinghatd_request_timeouts_total 1\n") {
		t.Errorf("timeout not counted:\n%s", grepMetric(mrec.Body.String(), "timeouts"))
	}
}

// TestInferBatchContextCancel covers caller-side cancellation of the
// library entry point.
func TestInferBatchContextCancel(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, Timeout: -1, CacheSize: -1,
		Faults: slowSite("featurize", 10*time.Millisecond),
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	cols := make([]data.Column, 64)
	for i := range cols {
		cols[i] = data.Column{Name: fmt.Sprintf("c%d", i), Values: []string{"1", "2"}}
	}
	if _, err := s.InferBatch(ctx, cols); err == nil {
		t.Fatal("InferBatch returned nil error after cancel")
	}
}

// TestShutdownDrainsInflight starts a slow request against a real HTTP
// server, shuts the server down mid-request, and requires the request to
// complete successfully — Shutdown must drain, not drop.
func TestShutdownDrainsInflight(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	s := newTestServer(t, Config{
		Workers: 2, Timeout: 10 * time.Second, CacheSize: -1,
		Faults: injectFunc(func(site string) error {
			if site == "featurize" {
				once.Do(func() { close(started) })
				time.Sleep(20 * time.Millisecond)
			}
			return nil
		}),
	})

	httpSrv := httptest.NewServer(s.Handler())
	defer httpSrv.Close()

	type result struct {
		status int
		preds  int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		body, err := json.Marshal(testBatch(8))
		if err != nil {
			resc <- result{err: err}
			return
		}
		resp, err := http.Post(httpSrv.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			resc <- result{err: err}
			return
		}
		var ir InferResponse
		if err := json.Unmarshal(raw, &ir); err != nil {
			resc <- result{status: resp.StatusCode, err: fmt.Errorf("decoding %q: %w", raw, err)}
			return
		}
		resc <- result{status: resp.StatusCode, preds: len(ir.Predictions)}
	}()

	<-started // the request is in flight
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Config.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown did not drain the in-flight request: %v", err)
	}

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.err)
	}
	if res.status != http.StatusOK || res.preds != 8 {
		t.Fatalf("in-flight request: status %d with %d predictions, want 200 with 8", res.status, res.preds)
	}

	// After Close, late batches are refused instead of deadlocking.
	s.Close()
	if _, err := s.InferBatch(context.Background(), []data.Column{{Name: "x", Values: []string{"1"}}}); err != ErrServerClosed {
		t.Fatalf("post-Close InferBatch error = %v, want ErrServerClosed", err)
	}
}

// TestHealthz checks the probe payload.
func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Model != "OurRF" || h.Classes != 9 || h.Workers != 3 {
		t.Errorf("unexpected health payload: %+v", h)
	}
	if h.Breaker != "closed" {
		t.Errorf("breaker = %q, want closed on a fresh server", h.Breaker)
	}
}

// TestBadRequests table-drives the 4xx surface.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxBatch: 4})
	h := s.Handler()
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"infer GET", http.MethodGet, "/v1/infer", "", http.StatusMethodNotAllowed},
		{"healthz POST", http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed},
		{"metrics POST", http.MethodPost, "/metrics", "", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "/v1/infer", "{nope", http.StatusBadRequest},
		{"empty batch", http.MethodPost, "/v1/infer", `{"columns":[]}`, http.StatusBadRequest},
		{"oversized batch", http.MethodPost, "/v1/infer",
			`{"columns":[{"name":"a"},{"name":"b"},{"name":"c"},{"name":"d"},{"name":"e"}]}`,
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body)))
			if rec.Code != tc.want {
				t.Errorf("status = %d, want %d (body %s)", rec.Code, tc.want, rec.Body.Bytes())
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("error responses must carry a JSON error body, got %q", rec.Body.Bytes())
			}
		})
	}
}

// liveValueLine matches the metric lines whose values move with the
// clock or the Go runtime (uptime and the runtime/metrics block); the
// pinned render normalizes their values to X.
var liveValueLine = regexp.MustCompile(`(?m)^(sortinghatd_uptime_seconds|sortinghatd_goroutines|sortinghatd_heap_bytes|sortinghatd_gc_cycles_total|sortinghatd_gc_pause_seconds_total) .*$`)

// scrapeMetrics fetches /metrics with the live values normalized.
func scrapeMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	return liveValueLine.ReplaceAllString(rec.Body.String(), "$1 X")
}

// emptyHistogramText renders the pinned exposition block of a fresh
// obs.Histogram: the fixed 20-bucket log layout plus +Inf, sum and count.
func emptyHistogramText(name, help string) string {
	out := "# HELP " + name + " " + help + "\n# TYPE " + name + " histogram\n"
	for i := 0; i < 20; i++ {
		out += fmt.Sprintf("%s_bucket{le=%q} 0\n", name, fmt.Sprintf("%g", 1e-05*float64(uint64(1)<<i)))
	}
	return out + name + `_bucket{le="+Inf"} 0` + "\n" + name + "_sum 0\n" + name + "_count 0\n"
}

// TestMetricsRenderPinned is the monitoring contract: the full /metrics
// document of a fresh server, byte for byte — names, help strings, type
// headers, and registration order. The pre-obs series must keep their
// exact layout (dashboards parse this); the eviction/capacity and forest
// series sit next to their families. Two scrapes of unchanged state must
// render identically.
func TestMetricsRenderPinned(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, CacheSize: 256})
	h := s.Handler()
	f := testModel(t).Forest
	if f == nil {
		t.Fatal("test model has no forest")
	}

	emptySummary := func(name, help string) string {
		return "# HELP " + name + " " + help + "\n" +
			"# TYPE " + name + " summary\n" +
			name + `{quantile="0.5"} 0` + "\n" +
			name + `{quantile="0.9"} 0` + "\n" +
			name + `{quantile="0.99"} 0` + "\n" +
			name + "_sum 0\n" +
			name + "_count 0\n"
	}
	counter := func(name, help string) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s 0\n", name, help, name, name)
	}
	gauge := func(name, help string, v float64) string {
		return fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	want := counter("sortinghatd_requests_total", "Completed /v1/infer requests.") +
		counter("sortinghatd_request_errors_total", "Rejected /v1/infer requests (malformed or oversized batches).") +
		counter("sortinghatd_request_timeouts_total", "/v1/infer requests that exceeded their deadline.") +
		gauge("sortinghatd_inflight_requests", "Requests currently being served.", 0) +
		counter("sortinghatd_columns_total", "Columns received across all accepted batches.") +
		counter("sortinghatd_cache_hits_total", "Columns answered from the prediction cache.") +
		counter("sortinghatd_cache_misses_total", "Columns that required featurization and prediction.") +
		counter("sortinghatd_cache_evictions_total", "Cache entries evicted to make room (LRU).") +
		gauge("sortinghatd_cache_entries", "Entries currently in the prediction cache.", 0) +
		gauge("sortinghatd_cache_capacity", "Configured prediction cache capacity in columns.", 256) +
		gauge("sortinghatd_workers", "Size of the column worker pool.", 2) +
		counter("sortinghatd_panic_recovered_total", "Panics recovered from the per-column hot path (featurize/predict).") +
		counter("sortinghatd_degraded_total", "Columns answered by the rule-based fallback instead of the ML model.") +
		counter("sortinghatd_shed_total", "Requests fast-failed by the admission gate (HTTP 429).") +
		gauge("sortinghatd_queue_depth", "Columns admitted and not yet picked up by a worker.", 0) +
		gauge("sortinghatd_queue_high_water", "Admission-gate high-water mark in columns.", 2*DefaultMaxBatch) +
		counter("sortinghatd_deadline_expired_in_queue_total", "Columns dropped at worker pickup because their deadline expired while queued (never featurized).") +
		gauge("sortinghatd_breaker_state", "Prediction circuit breaker state (0 closed, 1 open, 2 half-open).", 0) +
		counter("sortinghatd_breaker_open_total", "Times the prediction circuit breaker tripped open.") +
		counter("sortinghatd_faults_injected_total", "Faults fired by the injector (-fault-spec; 0 in production).") +
		counter("sortinghatd_model_reloads_total", "Hot model swaps applied via Reload / POST /admin/reload.") +
		counter("sortinghatd_model_reload_errors_total", "Rejected /admin/reload requests (bad body or unloadable model).") +
		gauge("sortinghatd_model_seq", "Monotonic model swap sequence number (1 = the startup model).", 1) +
		"# HELP sortinghatd_uptime_seconds Seconds since the server started.\n" +
		"# TYPE sortinghatd_uptime_seconds gauge\n" +
		"sortinghatd_uptime_seconds X\n" +
		emptySummary("sortinghatd_batch_columns", "Columns per /v1/infer request.") +
		emptyHistogramText("sortinghatd_queue_seconds", "Per-column wait between admission and worker pickup.") +
		emptyHistogramText("sortinghatd_cache_seconds", "Per-column prediction cache lookup latency.") +
		emptyHistogramText("sortinghatd_featurize_seconds", "Per-column base featurization latency.") +
		emptyHistogramText("sortinghatd_predict_seconds", "Per-column model prediction latency.") +
		emptyHistogramText("sortinghatd_request_seconds", "End-to-end /v1/infer latency.") +
		gauge("sortinghatd_forest_split_nodes", "Internal (split) nodes across the forest's fitted trees — the training split count.", float64(f.SplitNodes())) +
		gauge("sortinghatd_forest_leaf_nodes", "Leaf nodes across the forest's fitted trees.", float64(f.LeafNodes())) +
		gauge("sortinghatd_forest_max_depth", "Depth of the deepest fitted tree (root = 0).", float64(f.MaxTreeDepth())) +
		emptySummary("sortinghatd_forest_traversal_depth", "Per-tree traversal depth of forest predictions.") +
		"# HELP sortinghatd_goroutines Current number of live goroutines.\n" +
		"# TYPE sortinghatd_goroutines gauge\n" +
		"sortinghatd_goroutines X\n" +
		"# HELP sortinghatd_heap_bytes Bytes of memory occupied by live heap objects.\n" +
		"# TYPE sortinghatd_heap_bytes gauge\n" +
		"sortinghatd_heap_bytes X\n" +
		"# HELP sortinghatd_gc_cycles_total Completed garbage collection cycles.\n" +
		"# TYPE sortinghatd_gc_cycles_total counter\n" +
		"sortinghatd_gc_cycles_total X\n" +
		"# HELP sortinghatd_gc_pause_seconds_total Approximate total stop-the-world GC pause time, estimated from the runtime pause histogram.\n" +
		"# TYPE sortinghatd_gc_pause_seconds_total counter\n" +
		"sortinghatd_gc_pause_seconds_total X\n"

	got := scrapeMetrics(t, h)
	if got != want {
		t.Errorf("/metrics layout drifted from the pinned contract.\ngot:\n%s\nwant:\n%s", got, want)
	}
	if again := scrapeMetrics(t, h); again != got {
		t.Errorf("two scrapes of unchanged state differ:\nfirst:\n%s\nsecond:\n%s", got, again)
	}
}

// TestDebugTraces drives one batch through a 1-worker server and checks
// the recorded span tree end to end: the root infer span carries the
// request ID that the response header echoed, each column child carries
// featurize/predict grandchildren, every span has a duration, and the
// stage durations sum to no more than the request span (guaranteed only
// with a single worker — parallel columns can overlap).
func TestDebugTraces(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	h := s.Handler()

	rec, _ := postInfer(t, h, testBatch(3))
	if rec.Code != http.StatusOK {
		t.Fatalf("infer status = %d, body %s", rec.Code, rec.Body.Bytes())
	}
	reqID := rec.Header().Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("response missing X-Request-Id header")
	}

	trec := httptest.NewRecorder()
	h.ServeHTTP(trec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if trec.Code != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", trec.Code)
	}
	var tr TracesResponse
	if err := json.Unmarshal(trec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("decoding traces: %v\nbody: %s", err, trec.Body.Bytes())
	}
	if tr.Count != 1 || len(tr.Traces) != 1 {
		t.Fatalf("count = %d with %d traces, want exactly 1 finished trace", tr.Count, len(tr.Traces))
	}

	root := tr.Traces[0]
	if root.Name != "infer" {
		t.Fatalf("root span = %q, want infer", root.Name)
	}
	if root.DurationNS <= 0 {
		t.Errorf("root span has no duration")
	}
	if got := attrValue(root.Attrs, "request_id"); got != reqID {
		t.Errorf("root request_id attr = %q, want %q (must match the X-Request-Id header)", got, reqID)
	}
	if got := attrValue(root.Attrs, "columns"); got != "3" {
		t.Errorf("root columns attr = %q, want 3", got)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root has %d children, want 3 column spans", len(root.Children))
	}

	var stageSum int64
	for i, col := range root.Children {
		if col.Name != "column" {
			t.Fatalf("child %d = %q, want column", i, col.Name)
		}
		if col.DurationNS <= 0 {
			t.Errorf("column span %d has no duration", i)
		}
		if col.StartNS < 0 {
			t.Errorf("column span %d starts before the trace root", i)
		}
		if got := attrValue(col.Attrs, "cache"); got != "miss" {
			t.Errorf("column span %d cache attr = %q, want miss (cache disabled)", i, got)
		}
		if len(col.Children) != 2 {
			t.Fatalf("column span %d has %d children, want featurize+predict", i, len(col.Children))
		}
		for j, want := range []string{"featurize", "predict"} {
			stage := col.Children[j]
			if stage.Name != want {
				t.Fatalf("column %d stage %d = %q, want %q", i, j, stage.Name, want)
			}
			if stage.DurationNS <= 0 {
				t.Errorf("column %d %s span has no duration", i, want)
			}
			stageSum += stage.DurationNS
		}
	}
	if stageSum > root.DurationNS {
		t.Errorf("stage spans sum to %dns, more than the %dns request span", stageSum, root.DurationNS)
	}
}

// attrValue finds the first attribute named key.
func attrValue(attrs []obs.Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTraceRingConfig checks the TraceRing bound is honored by the
// endpoint: three requests through a ring of two leaves two traces.
func TestTraceRingConfig(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, TraceRing: 2})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if rec, _ := postInfer(t, h, testBatch(1)); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	var tr TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count != 2 {
		t.Errorf("ring of 2 retained %d traces", tr.Count)
	}
}

// TestPprofGated checks /debug/pprof/ is absent by default and mounted
// with EnablePprof.
func TestPprofGated(t *testing.T) {
	off := newTestServer(t, Config{Workers: 1})
	rec := httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", rec.Code)
	}

	on := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	rec = httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", rec.Code)
	}
}

// TestAccessLog checks the middleware emits one JSON record per request
// carrying the same request ID the client saw.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Config{Workers: 1, Logger: obs.NewLogger(&buf, slog.LevelInfo)})
	h := s.Handler()
	rec, _ := postInfer(t, h, testBatch(1))

	var entry struct {
		Msg       string  `json:"msg"`
		RequestID string  `json:"request_id"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		Duration  float64 `json:"duration_ms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not one JSON record: %v\nlog: %s", err, buf.Bytes())
	}
	if entry.Msg != "request" || entry.Method != http.MethodPost || entry.Path != "/v1/infer" || entry.Status != http.StatusOK {
		t.Errorf("unexpected access record: %+v", entry)
	}
	if entry.RequestID == "" || entry.RequestID != rec.Header().Get("X-Request-Id") {
		t.Errorf("log request_id %q does not match header %q", entry.RequestID, rec.Header().Get("X-Request-Id"))
	}
	if entry.Duration <= 0 {
		t.Errorf("access record missing duration_ms")
	}
}

// TestConcurrentBatchesDeterministic hammers one server from many
// goroutines with overlapping batches and requires every response to
// agree with the sequential pipeline — the worker pool must not leak
// state across requests.
func TestConcurrentBatchesDeterministic(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, CacheSize: 64})
	h := s.Handler()
	req := testBatch(16)
	want := make([]string, len(req.Columns))
	for i, c := range req.Columns {
		col := data.Column{Name: c.Name, Values: c.Values}
		typ, _ := testModel(t).Predict(&col)
		want[i] = typ.String()
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := json.Marshal(req)
			if err != nil {
				errs <- err
				return
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.Bytes())
				return
			}
			var resp InferResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				errs <- err
				return
			}
			for i, p := range resp.Predictions {
				if p.Type != want[i] {
					errs <- fmt.Errorf("col %d: got %q want %q", i, p.Type, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
