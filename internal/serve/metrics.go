package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics aggregates the server's counters and latency samples. Counters
// are lock-free atomics; the quantile trackers take a short mutex per
// observation. Everything is rendered by writePrometheus in a fixed order
// (no map iteration) so /metrics output is byte-stable for a given state.
type metrics struct {
	requests        atomic.Int64 // completed /v1/infer requests (any outcome)
	requestErrors   atomic.Int64 // 4xx responses (malformed batches)
	requestTimeouts atomic.Int64 // 504 responses (deadline exceeded)
	inflight        atomic.Int64 // requests currently being served
	columns         atomic.Int64 // columns across all accepted batches
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64

	batchSize latencyTracker // batch sizes (columns per request)
	featurize latencyTracker // per-column base-featurization seconds
	predict   latencyTracker // per-column model-prediction seconds
	request   latencyTracker // end-to-end request seconds
}

// trackerWindow is how many recent observations each latencyTracker keeps
// for quantile estimates. 2048 comfortably covers a scrape interval at
// high request rates while keeping the sort in quantiles cheap.
const trackerWindow = 2048

// latencyTracker keeps a bounded ring of the most recent observations and
// answers quantile queries over that window. It is deliberately simple —
// an exact sort over a small window instead of a streaming sketch — which
// is accurate for the window and costs O(w log w) only when scraped.
type latencyTracker struct {
	mu    sync.Mutex
	ring  [trackerWindow]float64
	next  int
	size  int
	count int64 // lifetime observations
	sum   float64
}

// observe records one sample.
func (t *latencyTracker) observe(v float64) {
	t.mu.Lock()
	t.ring[t.next] = v
	t.next = (t.next + 1) % trackerWindow
	if t.size < trackerWindow {
		t.size++
	}
	t.count++
	t.sum += v
	t.mu.Unlock()
}

// observeSince records the seconds elapsed since start.
func (t *latencyTracker) observeSince(start time.Time) {
	t.observe(time.Since(start).Seconds())
}

// snapshot returns the requested quantiles over the current window plus
// the lifetime count and sum. With no observations the quantiles are 0.
func (t *latencyTracker) snapshot(qs []float64) (quantiles []float64, count int64, sum float64) {
	t.mu.Lock()
	window := make([]float64, t.size)
	copy(window, t.ring[:t.size])
	count, sum = t.count, t.sum
	t.mu.Unlock()

	quantiles = make([]float64, len(qs))
	if len(window) == 0 {
		return quantiles, count, sum
	}
	sort.Float64s(window)
	for i, q := range qs {
		idx := int(q * float64(len(window)-1))
		if idx < 0 {
			idx = 0
		}
		if idx > len(window)-1 {
			idx = len(window) - 1
		}
		quantiles[i] = window[idx]
	}
	return quantiles, count, sum
}

// servedQuantiles are the quantiles exposed on /metrics.
var servedQuantiles = []float64{0.5, 0.9, 0.99}

// writeCounter emits one Prometheus counter with help and type headers.
func writeCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// writeGauge emits one Prometheus gauge.
func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// writeSummary emits a Prometheus summary: windowed quantiles plus
// lifetime _count and _sum series.
func writeSummary(w io.Writer, name, help string, t *latencyTracker) {
	quants, count, sum := t.snapshot(servedQuantiles)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	for i, q := range servedQuantiles {
		fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), quants[i])
	}
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, sum, name, count)
}

// writePrometheus renders every metric in Prometheus text exposition
// format, in a fixed order.
func (s *Server) writePrometheus(w io.Writer) {
	m := &s.met
	writeCounter(w, "sortinghatd_requests_total", "Completed /v1/infer requests.", m.requests.Load())
	writeCounter(w, "sortinghatd_request_errors_total", "Rejected /v1/infer requests (malformed or oversized batches).", m.requestErrors.Load())
	writeCounter(w, "sortinghatd_request_timeouts_total", "/v1/infer requests that exceeded their deadline.", m.requestTimeouts.Load())
	writeGauge(w, "sortinghatd_inflight_requests", "Requests currently being served.", float64(m.inflight.Load()))
	writeCounter(w, "sortinghatd_columns_total", "Columns received across all accepted batches.", m.columns.Load())
	writeCounter(w, "sortinghatd_cache_hits_total", "Columns answered from the prediction cache.", m.cacheHits.Load())
	writeCounter(w, "sortinghatd_cache_misses_total", "Columns that required featurization and prediction.", m.cacheMisses.Load())
	writeGauge(w, "sortinghatd_cache_entries", "Entries currently in the prediction cache.", float64(s.cache.len()))
	writeGauge(w, "sortinghatd_workers", "Size of the column worker pool.", float64(s.cfg.Workers))
	writeGauge(w, "sortinghatd_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())
	writeSummary(w, "sortinghatd_batch_columns", "Columns per /v1/infer request.", &m.batchSize)
	writeSummary(w, "sortinghatd_featurize_seconds", "Per-column base featurization latency.", &m.featurize)
	writeSummary(w, "sortinghatd_predict_seconds", "Per-column model prediction latency.", &m.predict)
	writeSummary(w, "sortinghatd_request_seconds", "End-to-end /v1/infer latency.", &m.request)
}
