package serve

import (
	"time"

	"sortinghat/internal/core"
	"sortinghat/internal/ml/tree"
	"sortinghat/internal/obs"
)

// metrics holds the server's handles into its obs.Registry. The registry
// renders in registration order, so the order below is the pinned
// /metrics layout (TestMetricsRenderPinned): the pre-obs series keep
// their exact names, help strings, and relative order, with the
// eviction/capacity and forest series slotted in next to their families.
type metrics struct {
	reg *obs.Registry

	requests        *obs.Counter // completed /v1/infer requests (any outcome)
	requestErrors   *obs.Counter // 4xx responses (malformed batches)
	requestTimeouts *obs.Counter // 504 responses (deadline exceeded)
	inflight        *obs.Gauge   // requests currently being served
	columns         *obs.Counter // columns across all accepted batches
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	panics          *obs.Counter // panics recovered from the hot path
	deadlineExpired *obs.Counter // columns dropped at pickup: deadline spent in queue
	degraded        *obs.Counter // columns answered by the rule fallback
	reloads         *obs.Counter // successful hot model swaps
	reloadErrors    *obs.Counter // rejected /admin/reload requests

	batchSize *obs.Summary   // batch sizes (columns per request)
	queueDur  *obs.Histogram // per-column admission → worker-pickup seconds
	cacheDur  *obs.Histogram // per-column cache-lookup seconds
	featurize *obs.Histogram // per-column base-featurization seconds
	predict   *obs.Histogram // per-column model-prediction seconds
	request   *obs.Histogram // end-to-end request seconds

	traversalDepth *obs.Summary // forest traversal depth, re-attached on reload
}

// newMetrics builds the server's registry. Counters and gauges the
// handlers increment directly get handles; state owned elsewhere (cache,
// config, forest) is exposed through render-time funcs so there is no
// double bookkeeping. When the pipeline's model is a Random Forest, the
// forest's structure gauges and per-tree traversal-depth summary are
// registered too, and the forest's observability sink is attached.
func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}
	m.requests = reg.Counter("sortinghatd_requests_total", "Completed /v1/infer requests.")
	m.requestErrors = reg.Counter("sortinghatd_request_errors_total", "Rejected /v1/infer requests (malformed or oversized batches).")
	m.requestTimeouts = reg.Counter("sortinghatd_request_timeouts_total", "/v1/infer requests that exceeded their deadline.")
	m.inflight = reg.Gauge("sortinghatd_inflight_requests", "Requests currently being served.")
	m.columns = reg.Counter("sortinghatd_columns_total", "Columns received across all accepted batches.")
	m.cacheHits = reg.Counter("sortinghatd_cache_hits_total", "Columns answered from the prediction cache.")
	m.cacheMisses = reg.Counter("sortinghatd_cache_misses_total", "Columns that required featurization and prediction.")
	reg.CounterFunc("sortinghatd_cache_evictions_total", "Cache entries evicted to make room (LRU).", s.cache.evicted)
	reg.GaugeFunc("sortinghatd_cache_entries", "Entries currently in the prediction cache.", func() float64 { return float64(s.cache.len()) })
	reg.GaugeFunc("sortinghatd_cache_capacity", "Configured prediction cache capacity in columns.", func() float64 { return float64(s.cache.capacity()) })
	reg.GaugeFunc("sortinghatd_workers", "Size of the column worker pool.", func() float64 { return float64(s.cfg.Workers) })
	m.panics = reg.Counter("sortinghatd_panic_recovered_total", "Panics recovered from the per-column hot path (featurize/predict).")
	m.degraded = reg.Counter("sortinghatd_degraded_total", "Columns answered by the rule-based fallback instead of the ML model.")
	reg.CounterFunc("sortinghatd_shed_total", "Requests fast-failed by the admission gate (HTTP 429).", s.gate.Shed)
	reg.GaugeFunc("sortinghatd_queue_depth", "Columns admitted and not yet picked up by a worker.", func() float64 { return float64(s.gate.Depth()) })
	reg.GaugeFunc("sortinghatd_queue_high_water", "Admission-gate high-water mark in columns.", func() float64 { return float64(s.gate.Capacity()) })
	m.deadlineExpired = reg.Counter("sortinghatd_deadline_expired_in_queue_total", "Columns dropped at worker pickup because their deadline expired while queued (never featurized).")
	reg.GaugeFunc("sortinghatd_breaker_state", "Prediction circuit breaker state (0 closed, 1 open, 2 half-open).", func() float64 { return float64(s.breaker.State()) })
	reg.CounterFunc("sortinghatd_breaker_open_total", "Times the prediction circuit breaker tripped open.", s.breaker.Opened)
	reg.CounterFunc("sortinghatd_faults_injected_total", "Faults fired by the injector (-fault-spec; 0 in production).", s.faultsFired)
	m.reloads = reg.Counter("sortinghatd_model_reloads_total", "Hot model swaps applied via Reload / POST /admin/reload.")
	m.reloadErrors = reg.Counter("sortinghatd_model_reload_errors_total", "Rejected /admin/reload requests (bad body or unloadable model).")
	reg.GaugeFunc("sortinghatd_model_seq", "Monotonic model swap sequence number (1 = the startup model).", func() float64 { return float64(s.current().seq) })
	reg.GaugeFunc("sortinghatd_uptime_seconds", "Seconds since the server started.", func() float64 { return time.Since(s.start).Seconds() })
	m.batchSize = reg.Summary("sortinghatd_batch_columns", "Columns per /v1/infer request.")
	m.queueDur = reg.Histogram("sortinghatd_queue_seconds", "Per-column wait between admission and worker pickup.")
	m.cacheDur = reg.Histogram("sortinghatd_cache_seconds", "Per-column prediction cache lookup latency.")
	m.featurize = reg.Histogram("sortinghatd_featurize_seconds", "Per-column base featurization latency.")
	m.predict = reg.Histogram("sortinghatd_predict_seconds", "Per-column model prediction latency.")
	m.request = reg.Histogram("sortinghatd_request_seconds", "End-to-end /v1/infer latency.")
	m.registerForest(s)
	reg.RuntimeMetrics("sortinghatd")
	return m
}

// faultsFired samples the configured injector's lifetime fire count, or
// 0 when no injector is configured (the production case).
func (s *Server) faultsFired() int64 {
	f, ok := s.faults.(interface{ Fired() int64 })
	if !ok {
		return 0
	}
	return f.Fired()
}

// registerForest attaches the forest's structure gauges and traversal
// summary when the startup pipeline's model is a Random Forest. The
// gauges sample whichever model is serving at scrape time (nil-safe, so a
// reload to a non-forest model reads 0), and Reload re-attaches the
// traversal summary to the incoming forest via attachForest.
func (m *metrics) registerForest(s *Server) {
	reg := m.reg
	if s.current().pipe.Forest == nil {
		return
	}
	forestGauge := func(name, help string, read func(f *tree.Forest) int) {
		reg.GaugeFunc(name, help, func() float64 {
			if f := s.current().pipe.Forest; f != nil {
				return float64(read(f))
			}
			return 0
		})
	}
	forestGauge("sortinghatd_forest_split_nodes", "Internal (split) nodes across the forest's fitted trees — the training split count.", (*tree.Forest).SplitNodes)
	forestGauge("sortinghatd_forest_leaf_nodes", "Leaf nodes across the forest's fitted trees.", (*tree.Forest).LeafNodes)
	forestGauge("sortinghatd_forest_max_depth", "Depth of the deepest fitted tree (root = 0).", (*tree.Forest).MaxTreeDepth)
	m.traversalDepth = reg.Summary("sortinghatd_forest_traversal_depth", "Per-tree traversal depth of forest predictions.")
	m.attachForest(s.current().pipe)
}

// attachForest points the incoming pipeline's forest (if any) at the
// registered traversal-depth summary, so a reloaded forest keeps feeding
// the same series. A no-op when the startup model had no forest (the
// summary was never registered) or the new model has none.
func (m *metrics) attachForest(pipe *core.Pipeline) {
	if m.traversalDepth == nil || pipe.Forest == nil {
		return
	}
	pipe.Forest.SetObs(&tree.Metrics{TraversalDepth: m.traversalDepth})
}
