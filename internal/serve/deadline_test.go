package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// postInferDeadline posts a batch with an X-Deadline-Ms header.
func postInferDeadline(t *testing.T, h http.Handler, req InferRequest, deadlineMS string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body))
	r.Header.Set(DeadlineHeader, deadlineMS)
	h.ServeHTTP(rec, r)
	return rec
}

// TestDeadlineExpiredInQueue is the deadline-propagation drill: a
// single slow worker, a batch wider than the deadline allows, and a
// tight propagated budget. The request must answer 504, and — the
// point of the mechanism — every column still queued when the deadline
// passed must be dropped at worker pickup, counted in
// sortinghatd_deadline_expired_in_queue_total, and never featurized.
func TestDeadlineExpiredInQueue(t *testing.T) {
	const batch = 8
	s := newTestServer(t, Config{
		Workers:   1,
		CacheSize: -1,
		Faults:    slowSite("featurize", 50*time.Millisecond),
	})
	h := s.Handler()

	rec := postInferDeadline(t, h, testBatch(batch), "120")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", rec.Code, rec.Body.Bytes())
	}
	if got := metricValue(t, h, "sortinghatd_request_timeouts_total"); got != 1 {
		t.Errorf("request_timeouts_total = %g, want 1", got)
	}

	// The worker drains the abandoned queue after the 504 is written;
	// poll until every column is accounted for as either featurized (the
	// fault fired for it) or expired-in-queue.
	deadline := time.Now().Add(5 * time.Second)
	var visits, expired float64
	for {
		visits = metricValue(t, h, "sortinghatd_featurize_seconds_count")
		expired = metricValue(t, h, "sortinghatd_deadline_expired_in_queue_total")
		if visits+expired >= batch || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if visits+expired != batch {
		t.Fatalf("columns unaccounted for: featurized %g + expired %g != %d", visits, expired, batch)
	}
	if expired < 1 {
		t.Errorf("deadline_expired_in_queue_total = %g, want >= 1 (a 120ms budget cannot featurize %d columns at 50ms each)", expired, batch)
	}

	// The flight recorder's errored ring must name the rejecting control.
	frec := httptest.NewRecorder()
	h.ServeHTTP(frec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if frec.Code != http.StatusOK {
		t.Fatalf("/debug/flight status = %d", frec.Code)
	}
	// (The per-request expired-column count note is best-effort: the
	// record is written when the 504 is, usually before the worker drains
	// the abandoned queue, so only the control note is guaranteed.)
	if !bytes.Contains(frec.Body.Bytes(), []byte("rejected by control: deadline")) {
		t.Errorf("/debug/flight errored ring missing the deadline routing note; body %s", frec.Body.Bytes())
	}
}

// TestDeadlineSpentBeforeAdmission checks a request arriving with no
// budget left is rejected up front: 504, a Retry-After-free fast fail,
// and zero columns admitted.
func TestDeadlineSpentBeforeAdmission(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	h := s.Handler()
	rec := postInferDeadline(t, h, testBatch(2), "0")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", rec.Code, rec.Body.Bytes())
	}
	if got := metricValue(t, h, "sortinghatd_columns_total"); got != 0 {
		t.Errorf("columns_total = %g, want 0 (nothing admitted on a spent budget)", got)
	}
}

// TestDeadlineHeaderMalformed checks garbage in X-Deadline-Ms is a 400,
// not a silently ignored header.
func TestDeadlineHeaderMalformed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	rec := postInferDeadline(t, s.Handler(), testBatch(1), "soon")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", rec.Code, rec.Body.Bytes())
	}
}

// TestRetryAfterScalesWithQueueDepth checks the shed response's
// Retry-After hint is derived from live queue fullness (here: full
// queue → the configured max), replacing the old hardcoded "1".
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	block := make(chan struct{})
	var unblockOnce sync.Once
	unblock := func() { unblockOnce.Do(func() { close(block) }) }
	t.Cleanup(unblock)
	s := newTestServer(t, Config{
		Workers:       1,
		CacheSize:     -1,
		MaxBatch:      4,
		QueueDepth:    4,
		RetryAfterMax: 8,
		Faults: injectFunc(func(site string) error {
			if site == "featurize" {
				<-block
			}
			return nil
		}),
	})
	h := s.Handler()

	// Fill the queue: 4 columns admitted, worker parked on the first.
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		body, _ := json.Marshal(testBatch(4))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body)))
		first <- rec
	}()
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, h, "sortinghatd_queue_depth") < 3 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	rec, _ := postInfer(t, h, testBatch(2))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", rec.Code, rec.Body.Bytes())
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", rec.Header().Get("Retry-After"))
	}
	// Depth was at least 3 of 4 when the shed happened: ceil(3*8/4) = 6.
	if ra < 6 || ra > 8 {
		t.Errorf("Retry-After = %d, want in [6, 8] for a nearly full queue (was hardcoded 1 before)", ra)
	}

	unblock()
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("parked batch finished with %d, want 200", rec.Code)
	}
}
