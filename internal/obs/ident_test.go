package obs

import (
	"context"
	"strings"
	"testing"
)

// TestTraceparentRoundTrip renders a SpanContext as a traceparent value
// and parses it back, pinning the W3C "00-<32 hex>-<16 hex>-01" layout.
func TestTraceparentRoundTrip(t *testing.T) {
	var sc SpanContext
	for i := range sc.TraceID {
		sc.TraceID[i] = byte(i + 1)
	}
	for i := range sc.SpanID {
		sc.SpanID[i] = byte(0xa0 + i)
	}
	hdr := sc.Traceparent()
	if len(hdr) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(hdr), hdr)
	}
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent version/flags wrong: %q", hdr)
	}
	if want := "00-0102030405060708090a0b0c0d0e0f10-a0a1a2a3a4a5a6a7-01"; hdr != want {
		t.Fatalf("traceparent = %q, want %q", hdr, want)
	}
	back, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent rejected its own rendering %q", hdr)
	}
	if back != sc {
		t.Fatalf("round trip lost identity: %+v != %+v", back, sc)
	}
}

// TestParseTraceparentRejects pins the malformed inputs the parser must
// refuse: wrong length, wrong separators, non-hex digits, zero ids.
func TestParseTraceparentRejects(t *testing.T) {
	valid := SpanContext{TraceID: TraceID{1}, SpanID: SpanID{2}}.Traceparent()
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("sanity: %q should parse", valid)
	}
	cases := map[string]string{
		"empty":         "",
		"truncated":     valid[:54],
		"overlong":      valid + "0",
		"bad separator": strings.Replace(valid, "-", "_", 1),
		"non-hex trace": "00-zz02030405060708090a0b0c0d0e0f10-a0a1a2a3a4a5a6a7-01",
		"non-hex span":  "00-0102030405060708090a0b0c0d0e0f10-zza1a2a3a4a5a6a7-01",
		"zero trace id": "00-00000000000000000000000000000000-a0a1a2a3a4a5a6a7-01",
		"zero span id":  "00-0102030405060708090a0b0c0d0e0f10-0000000000000000-01",
	}
	for name, in := range cases {
		if sc, ok := ParseTraceparent(in); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted -> %+v", name, in, sc)
		}
	}
	// Foreign versions and flags are accepted (W3C forward compatibility).
	for _, in := range []string{
		"01" + valid[2:],
		valid[:53] + "00",
	} {
		if _, ok := ParseTraceparent(in); !ok {
			t.Errorf("ParseTraceparent(%q) rejected a valid foreign version/flags", in)
		}
	}
}

// TestSpanIdentityInheritance pins the in-process identity contract: a
// root span mints a fresh trace id, children inherit it, and each child's
// parent_span_id is its parent's span id.
func TestSpanIdentityInheritance(t *testing.T) {
	tr := NewTracer(2)
	ctx, root := tr.Start(context.Background(), "request")
	ctxA, a := tr.Start(ctx, "featurize")
	_, a1 := tr.Start(ctxA, "stats")
	a1.End()
	a.End()
	root.End()

	rc := root.Context()
	if rc.TraceID.IsZero() || rc.SpanID.IsZero() {
		t.Fatalf("root has incomplete identity: %+v", rc)
	}
	if a.Context().TraceID != rc.TraceID || a1.Context().TraceID != rc.TraceID {
		t.Error("children do not share the root trace id")
	}
	if a.Context().SpanID == rc.SpanID || a1.Context().SpanID == a.Context().SpanID {
		t.Error("span ids not unique within the trace")
	}
	got := tr.Recent()[0]
	if got.TraceID != rc.TraceID.String() {
		t.Errorf("JSON trace_id = %q, want %q", got.TraceID, rc.TraceID)
	}
	if got.ParentID != "" {
		t.Errorf("locally minted root has parent_span_id %q, want none", got.ParentID)
	}
	feat := got.Children[0]
	if feat.ParentID != rc.SpanID.String() {
		t.Errorf("child parent_span_id = %q, want root span id %q", feat.ParentID, rc.SpanID)
	}
	if feat.TraceID != "" {
		t.Errorf("non-root span carries trace_id %q; only roots should", feat.TraceID)
	}
	if feat.Children[0].ParentID != feat.SpanID {
		t.Errorf("grandchild parent_span_id = %q, want %q", feat.Children[0].ParentID, feat.SpanID)
	}
}

// TestRemoteParentContinuation pins the cross-process contract: a root
// span started under ContextWithRemoteParent adopts the remote trace id
// and parents itself to the remote span — the replica half of gateway →
// replica propagation.
func TestRemoteParentContinuation(t *testing.T) {
	remote := SpanContext{TraceID: TraceID{0xde, 0xad}, SpanID: SpanID{0xbe, 0xef}}
	tr := NewTracer(2)
	ctx := ContextWithRemoteParent(context.Background(), remote)
	ctx, root := tr.Start(ctx, "infer")
	_, child := tr.Start(ctx, "featurize")
	child.End()
	root.End()

	if got := root.Context().TraceID; got != remote.TraceID {
		t.Errorf("root trace id = %v, want the remote trace id %v", got, remote.TraceID)
	}
	if root.Context().SpanID == remote.SpanID {
		t.Error("root reused the remote span id instead of minting its own")
	}
	got := tr.Recent()[0]
	if got.ParentID != remote.SpanID.String() {
		t.Errorf("root parent_span_id = %q, want remote span %q", got.ParentID, remote.SpanID)
	}
	if got.TraceID != remote.TraceID.String() {
		t.Errorf("root trace_id = %q, want %q", got.TraceID, remote.TraceID)
	}
	if got.Children[0].ParentID != root.Context().SpanID.String() {
		t.Error("child parents to the local root, not the remote span")
	}

	// An in-process parent wins over a stale remote identity in ctx.
	ctx2 := ContextWithRemoteParent(context.Background(), remote)
	ctx2, outer := tr.Start(ctx2, "outer")
	_, inner := tr.Start(ctx2, "inner")
	if inner.Context().TraceID != outer.Context().TraceID {
		t.Error("child with local parent must inherit the local trace id")
	}
	inner.End()
	outer.End()

	// A zero remote parent is ignored.
	if c := ContextWithRemoteParent(context.Background(), SpanContext{}); c != context.Background() {
		t.Error("zero remote parent should leave ctx unchanged")
	}
}

// TestSeedIDsDeterministic pins that SeedIDs makes ids a pure function of
// the seed and creation order, and that two differently seeded tracers
// diverge — the property golden tests and fleet-uniqueness rest on.
func TestSeedIDsDeterministic(t *testing.T) {
	mint := func(seed uint64) (TraceID, SpanID) {
		tr := NewTracer(1)
		tr.SeedIDs(seed)
		_, s := tr.Start(context.Background(), "x")
		s.End()
		return s.Context().TraceID, s.Context().SpanID
	}
	t1, s1 := mint(7)
	t2, s2 := mint(7)
	if t1 != t2 || s1 != s2 {
		t.Error("same seed produced different ids")
	}
	t3, s3 := mint(8)
	if t1 == t3 || s1 == s3 {
		t.Error("different seeds produced identical ids")
	}
	if t1.IsZero() || s1.IsZero() {
		t.Error("seeded generator minted a zero id")
	}
}

// TestNilSpanContext pins nil-safety for the identity accessors.
func TestNilSpanContext(t *testing.T) {
	var s *Span
	if !s.Context().IsZero() {
		t.Error("nil span Context() must be zero")
	}
	var tr *Tracer
	tr.SeedIDs(1) // must not panic
}
