package obs

import (
	"sort"
	"sync"
)

// DefaultFlightRing is the default capacity of each flight-recorder ring
// (slowest and errored are separate rings of this size).
const DefaultFlightRing = 32

// Phase is one named stage of a request with its measured duration —
// queue/cache/featurize/predict on a replica, dispatch/hedge/reassemble
// on the gateway. Phases are a slice, not a map, so records render
// deterministically.
type Phase struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// FlightRecord is one request worth keeping: identity to join it with
// traces and logs, total and per-phase timing, and the routing decisions
// (shard assignment, hedges, failovers) that explain where the time went.
type FlightRecord struct {
	TraceID    string  `json:"trace_id,omitempty"`
	RequestID  string  `json:"request_id,omitempty"`
	Path       string  `json:"path,omitempty"`
	Status     int     `json:"status,omitempty"`
	DurationNS int64   `json:"duration_ns"`
	Columns    int     `json:"columns,omitempty"`
	Phases     []Phase `json:"phases,omitempty"`
	Notes      []string `json:"notes,omitempty"` // routing / hedge / failover decisions
	Err        string  `json:"error,omitempty"`
}

// FlightRecorder keeps the requests worth explaining after the fact: a
// bounded ring of the slowest requests seen (by total duration) and a
// separate ring of the most recent errored requests. Recording is cheap
// — a short critical section, no allocation unless the record is kept —
// and happens after the response is written, off the latency path. A nil
// *FlightRecorder is a valid disabled recorder.
type FlightRecorder struct {
	mu      sync.Mutex
	slowest []FlightRecord // sorted slowest-first, at most cap
	errored []FlightRecord // ring, next points at the oldest slot
	next    int
	size    int
	capac   int
}

// NewFlightRecorder returns a recorder keeping up to capacity slowest and
// capacity errored requests (DefaultFlightRing when capacity is not
// positive).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRing
	}
	return &FlightRecorder{
		slowest: make([]FlightRecord, 0, capacity),
		errored: make([]FlightRecord, capacity),
		capac:   capacity,
	}
}

// Record offers one finished request to the recorder. Errored requests
// (non-empty Err or status >= 500) always enter the errored ring,
// evicting the oldest; any request slow enough to beat the current
// slowest set enters it, evicting the fastest of the kept.
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if rec.Err != "" || rec.Status >= 500 {
		f.errored[f.next] = rec
		f.next = (f.next + 1) % f.capac
		if f.size < f.capac {
			f.size++
		}
	}
	if len(f.slowest) < f.capac {
		f.slowest = append(f.slowest, rec)
		f.sortSlowest()
		return
	}
	if rec.DurationNS > f.slowest[len(f.slowest)-1].DurationNS {
		f.slowest[len(f.slowest)-1] = rec
		f.sortSlowest()
	}
}

// sortSlowest keeps the slowest slice ordered slowest-first. Stable so
// equal-duration records keep arrival order.
func (f *FlightRecorder) sortSlowest() {
	sort.SliceStable(f.slowest, func(i, j int) bool {
		return f.slowest[i].DurationNS > f.slowest[j].DurationNS
	})
}

// FlightSnapshot is the serializable state of a recorder, what
// GET /debug/flight returns.
type FlightSnapshot struct {
	Slowest []FlightRecord `json:"slowest"` // slowest first
	Errored []FlightRecord `json:"errored"` // most recent first
}

// Snapshot copies out the current state: slowest requests slowest-first,
// errored requests most-recent-first.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{Slowest: []FlightRecord{}, Errored: []FlightRecord{}}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	snap := FlightSnapshot{
		Slowest: append([]FlightRecord(nil), f.slowest...),
		Errored: make([]FlightRecord, 0, f.size),
	}
	for i := 1; i <= f.size; i++ {
		snap.Errored = append(snap.Errored, f.errored[(f.next-i+f.capac)%f.capac])
	}
	if snap.Slowest == nil {
		snap.Slowest = []FlightRecord{}
	}
	return snap
}
