package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestHistogramRenderPinned pins the exact exposition bytes for a known
// set of observations: fixed bucket bounds, cumulative counts, sum and
// count lines. This is the layout the serve/gateway pinned-metrics tests
// build on.
func TestHistogramRenderPinned(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Test latency.")
	h.Observe(0.000005) // first bucket (1e-05)
	h.Observe(0.00002)  // 2e-05 bucket
	h.Observe(0.00002)  // 2e-05 bucket again
	h.Observe(0.5)      // 0.65536 bucket
	h.Observe(100)      // +Inf only

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	got := buf.String()
	want := `# HELP test_seconds Test latency.
# TYPE test_seconds histogram
test_seconds_bucket{le="1e-05"} 1
test_seconds_bucket{le="2e-05"} 3
test_seconds_bucket{le="4e-05"} 3
test_seconds_bucket{le="8e-05"} 3
test_seconds_bucket{le="0.00016"} 3
test_seconds_bucket{le="0.00032"} 3
test_seconds_bucket{le="0.00064"} 3
test_seconds_bucket{le="0.00128"} 3
test_seconds_bucket{le="0.00256"} 3
test_seconds_bucket{le="0.00512"} 3
test_seconds_bucket{le="0.01024"} 3
test_seconds_bucket{le="0.02048"} 3
test_seconds_bucket{le="0.04096"} 3
test_seconds_bucket{le="0.08192"} 3
test_seconds_bucket{le="0.16384"} 3
test_seconds_bucket{le="0.32768"} 3
test_seconds_bucket{le="0.65536"} 4
test_seconds_bucket{le="1.31072"} 4
test_seconds_bucket{le="2.62144"} 4
test_seconds_bucket{le="5.24288"} 4
test_seconds_bucket{le="+Inf"} 5
test_seconds_sum 100.500045
test_seconds_count 5
`
	if got != want {
		t.Errorf("histogram render drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Two renders of the same state are byte-identical.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of identical state differ")
	}
}

// TestHistogramBucketEdges pins edge placement: a sample exactly on a
// bound lands in that bucket (le is inclusive), zero and negative samples
// land in the first bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "Edges.")
	h.Observe(1e-05) // exactly the first bound
	h.Observe(0)
	h.Observe(5.24288) // exactly the last finite bound

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, line := range []string{
		`edge_seconds_bucket{le="1e-05"} 2`,
		`edge_seconds_bucket{le="5.24288"} 3`,
		`edge_seconds_bucket{le="+Inf"} 3`,
		`edge_seconds_count 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("render missing %q:\n%s", line, out)
		}
	}
	if h.Count() != 3 {
		t.Errorf("Count() = %d, want 3", h.Count())
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// under -race this pins the lock-free recording, and the final count and
// sum must come out exact (the CAS loop loses no samples).
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "Concurrent.")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("Count() = %d, want %d", h.Count(), workers*per)
	}
	want := float64(workers*per) * 0.001
	if got := h.Sum(); got < want*0.999999 || got > want*1.000001 {
		t.Errorf("Sum() = %g, want ~%g", got, want)
	}
}
