package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns a structured JSON logger writing to w at the given
// level. One JSON object per line, so service logs are machine-parseable
// alongside -trace-out JSONL traces and /metrics scrapes.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// requestIDKey is the context key carrying the request ID.
type requestIDKey struct{}

// WithRequestID returns a context carrying id. The serving layer assigns
// one ID per HTTP request and threads it through the access log, the
// request's trace span, and the X-Request-Id response header, so the
// three signals can be joined after the fact.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
