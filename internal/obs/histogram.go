package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// histogramBounds are the fixed upper bounds (seconds) shared by every
// Histogram: 20 log-spaced buckets from 10µs doubling to ~5.24s, plus the
// implicit +Inf bucket. One fixed layout for all latency series keeps
// /metrics output byte-stable across processes and restarts and makes
// histograms from gateway and replicas directly comparable: the range
// spans a cache hit (tens of µs) through a hedged fleet-wide batch
// (seconds).
var histogramBounds = func() []float64 {
	b := make([]float64, 20)
	for i := range b {
		b[i] = 1e-05 * float64(uint64(1)<<i)
	}
	return b
}()

// histogramLabels are the pre-rendered `le` label values for
// histogramBounds. Rendering them once at init pins the exact bytes the
// pinned-layout metrics tests assert on.
var histogramLabels = func() []string {
	ls := make([]string, len(histogramBounds))
	for i, b := range histogramBounds {
		ls[i] = fmt.Sprintf("%g", b)
	}
	return ls
}()

// Histogram is a fixed-bucket latency histogram in seconds. Unlike
// Summary it has no sliding window: buckets are cumulative over process
// lifetime, cheap to record into (one atomic add on the hot path, no
// lock, no allocation), and render in Prometheus histogram exposition
// format with a byte-stable layout. Use it for hot request paths; keep
// Summary for low-rate series where windowed quantiles read better.
type Histogram struct {
	name, help string
	counts     []atomic.Uint64 // one per bound; +Inf tracked via count
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits, CAS-updated
}

// Histogram registers and returns a new histogram with the package-wide
// fixed bucket layout.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help, counts: make([]atomic.Uint64, len(histogramBounds))}
	r.register(name, h)
	return h
}

// Observe records one sample in seconds.
func (h *Histogram) Observe(v float64) {
	for i, b := range histogramBounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the lifetime observation count.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the lifetime sum of observed values in seconds.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	// Snapshot count first: Observe bumps buckets before count, so a
	// concurrent scrape can only see cumulative bucket totals <= count,
	// never a bucket claiming more observations than _count reports.
	total := h.count.Load()
	var cum uint64
	for i := range histogramBounds {
		cum += h.counts[i].Load()
		if cum > total {
			cum = total
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, histogramLabels[i], cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, total)
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", h.name, h.Sum(), h.name, total)
}
