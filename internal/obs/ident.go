package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// TraceID is a W3C-style 128-bit trace identifier shared by every span of
// one distributed request, across processes. The zero value is invalid.
type TraceID [16]byte

// SpanID is a W3C-style 64-bit span identifier, unique within a trace.
// The zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// SpanContext is the cross-process identity of a span: enough to parent a
// child span in another process. It travels between processes as a W3C
// traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// IsZero reports whether the context carries no identity.
func (sc SpanContext) IsZero() bool { return sc.TraceID.IsZero() }

// TraceparentHeader is the W3C Trace Context header name carrying a
// SpanContext between processes (https://www.w3.org/TR/trace-context/).
const TraceparentHeader = "traceparent"

// Traceparent renders the context as a W3C traceparent value:
// version 00, sampled flag set ("00-<trace-id>-<span-id>-01").
func (sc SpanContext) Traceparent() string {
	var buf [55]byte
	copy(buf[0:], "00-")
	hex.Encode(buf[3:35], sc.TraceID[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], sc.SpanID[:])
	copy(buf[52:], "-01")
	return string(buf[:])
}

// ParseTraceparent parses a W3C traceparent value. It accepts any version
// and flags but requires the fixed "2-32-16-2" hex layout and non-zero
// trace and span ids; ok is false for anything else (including "").
func ParseTraceparent(s string) (sc SpanContext, ok bool) {
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return SpanContext{}, false
	}
	return sc, true
}

// remoteParentKey is the context key carrying a remote parent span
// identity (parsed from an incoming traceparent header).
type remoteParentKey struct{}

// ContextWithRemoteParent returns a context carrying sc as the remote
// parent for the next root span started under it: Tracer.Start adopts the
// remote trace id and parents the new root to the remote span, which is
// how a replica's spans join the gateway's trace. A zero sc returns ctx
// unchanged.
func ContextWithRemoteParent(ctx context.Context, sc SpanContext) context.Context {
	if sc.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, remoteParentKey{}, sc)
}

// RemoteParentFrom returns the remote parent identity carried by ctx, if
// any.
func RemoteParentFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteParentKey{}).(SpanContext)
	return sc, ok
}

// idGen derives span and trace ids from a per-tracer random seed and an
// atomic counter: id N is a bit mix of seed+N, so generation is one
// atomic add plus arithmetic — no locks, no allocation, no per-span
// randomness on the hot path. Distinct processes draw distinct seeds from
// crypto/rand, so ids from a fleet's tracers do not collide in practice.
type idGen struct {
	seed uint64
	ctr  atomic.Uint64
}

// newIDGen seeds a generator from crypto/rand, falling back to a fixed
// seed if the system randomness source fails (ids stay unique within the
// process either way).
func newIDGen() *idGen {
	var b [8]byte
	seed := uint64(0x9e3779b97f4a7c15)
	if _, err := crand.Read(b[:]); err == nil {
		seed = binary.LittleEndian.Uint64(b[:])
	}
	return &idGen{seed: seed}
}

// mix64 is the splitmix64 finalizer: a cheap bijective mixer whose output
// is well distributed even for sequential inputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// spanID mints the next span id (never zero).
func (g *idGen) spanID() SpanID {
	v := mix64(g.seed + g.ctr.Add(1))
	if v == 0 {
		v = 1
	}
	var id SpanID
	binary.BigEndian.PutUint64(id[:], v)
	return id
}

// traceID mints the next trace id (never zero).
func (g *idGen) traceID() TraceID {
	hi := mix64(g.seed + g.ctr.Add(1))
	lo := mix64(g.seed ^ g.ctr.Add(1))
	if hi == 0 && lo == 0 {
		lo = 1
	}
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], hi)
	binary.BigEndian.PutUint64(id[8:], lo)
	return id
}
