package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metrics and renders them in Prometheus text exposition
// format. Metrics render in registration order — never by map iteration —
// so two renders of the same state are byte-identical. Registering the
// same name twice panics: metric names are part of the public monitoring
// contract and a silent duplicate would split one series in two.
type Registry struct {
	mu      sync.Mutex
	metrics []prometheusWriter
	names   map[string]bool
}

// prometheusWriter is one registered metric; write renders its exposition
// lines.
type prometheusWriter interface {
	write(w io.Writer)
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register appends m under name, panicking on duplicates.
func (r *Registry) register(name string, m prometheusWriter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// WritePrometheus renders every registered metric in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := make([]prometheusWriter, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	for _, m := range metrics {
		m.write(w)
	}
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	writeCounterText(w, c.name, c.help, c.v.Load())
}

// CounterFunc registers a counter whose value is read from fn at render
// time. Use it to expose a count owned by another component (e.g. cache
// evictions) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, &counterFunc{name: name, help: help, fn: fn})
}

// counterFunc is the render-time-sampled counter behind CounterFunc.
type counterFunc struct {
	name, help string
	fn         func() int64
}

func (c *counterFunc) write(w io.Writer) {
	writeCounterText(w, c.name, c.help, c.fn())
}

// Gauge is a settable int64-valued metric rendered as a float.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current gauge value.
func (g *Gauge) Load() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) {
	writeGaugeText(w, g.name, g.help, float64(g.v.Load()))
}

// GaugeFunc registers a gauge whose value is read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeFunc{name: name, help: help, fn: fn})
}

// gaugeFunc is the render-time-sampled gauge behind GaugeFunc.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

func (g *gaugeFunc) write(w io.Writer) {
	writeGaugeText(w, g.name, g.help, g.fn())
}

// SummaryWindow is how many recent observations each Summary keeps for
// quantile estimates. 2048 comfortably covers a scrape interval at high
// request rates while keeping the sort in Quantiles cheap.
const SummaryWindow = 2048

// summaryQuantiles are the quantiles every summary exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// Summary keeps a bounded ring of the most recent observations and
// answers quantile queries over that window, alongside a lifetime count
// and sum. It is deliberately simple — an exact sort over a small window
// instead of a streaming sketch — which is accurate for the window and
// costs O(w log w) only when scraped.
type Summary struct {
	name, help string

	mu    sync.Mutex
	ring  [SummaryWindow]float64
	next  int
	size  int
	count int64 // lifetime observations
	sum   float64
}

// Summary registers and returns a new summary.
func (r *Registry) Summary(name, help string) *Summary {
	s := &Summary{name: name, help: help}
	r.register(name, s)
	return s
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.ring[s.next] = v
	s.next = (s.next + 1) % SummaryWindow
	if s.size < SummaryWindow {
		s.size++
	}
	s.count++
	s.sum += v
	s.mu.Unlock()
}

// ObserveSince records the seconds elapsed since start.
func (s *Summary) ObserveSince(start time.Time) {
	s.Observe(time.Since(start).Seconds())
}

// Count returns the lifetime observation count.
func (s *Summary) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantiles returns the requested quantiles over the current window plus
// the lifetime count and sum, using nearest-rank selection
// (round(q·(n−1)) into the sorted window). With no observations the
// quantiles are 0.
func (s *Summary) Quantiles(qs []float64) (quantiles []float64, count int64, sum float64) {
	s.mu.Lock()
	window := make([]float64, s.size)
	copy(window, s.ring[:s.size])
	count, sum = s.count, s.sum
	s.mu.Unlock()

	quantiles = make([]float64, len(qs))
	if len(window) == 0 {
		return quantiles, count, sum
	}
	sort.Float64s(window)
	for i, q := range qs {
		// Nearest rank: truncation (int(q·(n−1))) biases small-window
		// quantiles low — with n=10, p99 would land on index 8, not 9.
		idx := int(q*float64(len(window)-1) + 0.5)
		if idx < 0 {
			idx = 0
		}
		if idx > len(window)-1 {
			idx = len(window) - 1
		}
		quantiles[i] = window[idx]
	}
	return quantiles, count, sum
}

func (s *Summary) write(w io.Writer) {
	quants, count, sum := s.Quantiles(summaryQuantiles)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", s.name, s.help, s.name)
	for i, q := range summaryQuantiles {
		fmt.Fprintf(w, "%s{quantile=%q} %g\n", s.name, fmt.Sprintf("%g", q), quants[i])
	}
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", s.name, sum, s.name, count)
}

// writeCounterText emits one Prometheus counter with help and type headers.
func writeCounterText(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// writeGaugeText emits one Prometheus gauge.
func writeGaugeText(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}
