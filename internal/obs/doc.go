// Package obs is the repository's unified observability layer: a metrics
// registry, request-scoped tracing, structured logging, and profiling
// hooks, built on the standard library only and shared by the serving
// pipeline (internal/serve, cmd/sortinghatd) and the offline pipelines
// (internal/core training, internal/experiments, cmd/sortinghat,
// cmd/benchmark).
//
// The paper's evaluation itself argues that per-stage cost matters
// (Figure 7 splits prediction runtime into featurization vs. inference);
// this package makes that split observable in production and in every
// benchmark run rather than only in ad-hoc experiments.
//
// # Three pillars
//
//   - Metrics: a Registry of counters, gauges, and summaries rendered in
//     Prometheus text exposition format. Metrics render in registration
//     order, never by map iteration, so /metrics output is byte-stable
//     for a given state (the same render-twice discipline the experiment
//     tables follow). Summaries answer quantile queries over a bounded
//     window of recent observations using nearest-rank selection.
//   - Tracing: a Tracer builds trees of Spans propagated through
//     context.Context. Span identity is purely structural — a name, a
//     monotonic start offset, a monotonic duration, ordered attributes,
//     children — with no wall-clock timestamps, so trace output stays
//     clean under the repository's determinism analyzers (cmd/shvet) and
//     two runs of the same workload differ only in durations. Finished
//     root spans land in a bounded in-memory ring (served by
//     GET /debug/traces in internal/serve) and, when a sink is set, as
//     one JSON line per trace (the -trace-out flag of cmd/sortinghat and
//     cmd/benchmark).
//   - Logging and profiling: NewLogger builds a log/slog JSON logger;
//     request IDs travel via WithRequestID/RequestIDFrom so access logs,
//     traces, and metrics windows can be correlated; MountPprof exposes
//     net/http/pprof behind an explicit opt-in flag.
//
// # Concurrency
//
// All types are safe for concurrent use. Counters and gauges are
// lock-free atomics; summaries take a short mutex per observation; a
// Span's children and attributes are mutex-guarded so worker pools may
// open child spans of one request concurrently. Registration
// (Registry.Counter and friends) is expected at startup but is itself
// mutex-guarded.
package obs
