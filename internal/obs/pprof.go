package obs

import (
	"net/http"
	"net/http/pprof"
)

// MountPprof registers the net/http/pprof handlers on mux under
// /debug/pprof/. It is explicit — nothing is mounted on the default mux
// as a side effect of importing this package — so profiling stays an
// opt-in flag (-pprof in cmd/sortinghatd) rather than an always-on
// surface.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
