package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSpanTreeParentChildOrdering builds a three-level trace from one
// goroutine and pins the structural contract: children appear under
// their parent in creation order, start offsets are non-decreasing, and
// every span carries a duration once ended.
func TestSpanTreeParentChildOrdering(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.Start(context.Background(), "request")
	root.SetAttr("request_id", "req-1")

	ctxA, a := StartSpan(ctx, "featurize")
	_, a1 := StartSpan(ctxA, "stats")
	a1.End()
	a.End()
	_, b := StartSpan(ctx, "predict")
	b.End()
	root.End()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(recent))
	}
	got := recent[0]
	if got.Name != "request" {
		t.Fatalf("root name = %q", got.Name)
	}
	if len(got.Attrs) != 1 || got.Attrs[0] != (Attr{Key: "request_id", Value: "req-1"}) {
		t.Errorf("root attrs = %+v", got.Attrs)
	}
	if len(got.Children) != 2 || got.Children[0].Name != "featurize" || got.Children[1].Name != "predict" {
		t.Fatalf("children = %+v, want [featurize predict]", got.Children)
	}
	feat := got.Children[0]
	if len(feat.Children) != 1 || feat.Children[0].Name != "stats" {
		t.Fatalf("grandchildren = %+v, want [stats]", feat.Children)
	}

	var walk func(s SpanJSON, parentStart int64)
	walk = func(s SpanJSON, parentStart int64) {
		if s.DurationNS < 0 {
			t.Errorf("span %s: negative duration %d", s.Name, s.DurationNS)
		}
		if s.StartNS < parentStart {
			t.Errorf("span %s starts at %dns before its parent (%dns)", s.Name, s.StartNS, parentStart)
		}
		prev := s.StartNS
		for _, c := range s.Children {
			if c.StartNS < prev {
				t.Errorf("span %s: child %s out of creation order", s.Name, c.Name)
			}
			prev = c.StartNS
			walk(c, s.StartNS)
		}
	}
	if got.StartNS != 0 {
		t.Errorf("root start offset = %d, want 0", got.StartNS)
	}
	walk(got, 0)

	// Stage spans fit inside the request span.
	sum := feat.DurationNS + got.Children[1].DurationNS
	if sum > got.DurationNS {
		t.Errorf("stage durations sum to %dns > request %dns", sum, got.DurationNS)
	}
}

// TestTracerRingBounded overfills the ring and checks only the newest
// traces survive, oldest first.
func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(2)
	for _, name := range []string{"one", "two", "three"} {
		_, s := tr.Start(context.Background(), name)
		s.End()
	}
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].Name != "two" || recent[1].Name != "three" {
		t.Fatalf("recent = %+v, want [two three]", recent)
	}
}

// TestNilTracerAndSpanAreNoOps pins the nil-safety contract that lets
// libraries instrument unconditionally.
func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.SetAttr("k", "v")
	s.End()
	if d := s.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if ctx2, c := StartSpan(ctx, "child"); c != nil || ctx2 != ctx {
		t.Error("StartSpan without a parent span must be a no-op")
	}
	if tr.Recent() != nil {
		t.Error("nil tracer Recent() != nil")
	}
	if tr.SinkErr() != nil {
		t.Error("nil tracer SinkErr() != nil")
	}
}

// TestJSONLSink checks that finished root spans are written as one valid
// JSON object per line with no wall-clock fields.
func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(4)
	tr.SetSink(&buf)
	for i := 0; i < 3; i++ {
		ctx, root := tr.Start(context.Background(), "train")
		_, c := StartSpan(ctx, "fit")
		c.End()
		root.End()
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var s SpanJSON
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if s.Name != "train" || len(s.Children) != 1 || s.Children[0].Name != "fit" {
			t.Errorf("line %d: unexpected trace %+v", i, s)
		}
		for _, banned := range []string{"time", "wall", "date"} {
			if strings.Contains(line, `"`+banned) {
				t.Errorf("line %d carries a wall-clock-looking field %q: %s", i, banned, line)
			}
		}
	}
}

// TestConcurrentChildSpans opens children of one request span from many
// goroutines (the worker-pool shape) and, under -race, pins the span's
// internal locking; the child count must come out exact.
func TestConcurrentChildSpans(t *testing.T) {
	tr := NewTracer(2)
	ctx, root := tr.Start(context.Background(), "request")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, c := StartSpan(ctx, "column")
				c.SetAttr("i", "x")
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	got := tr.Recent()
	if len(got) != 1 || len(got[0].Children) != 8*50 {
		t.Fatalf("root has %d children, want %d", len(got[0].Children), 8*50)
	}
}

// TestRequestIDContext round-trips a request ID through a context.
func TestRequestIDContext(t *testing.T) {
	ctx := WithRequestID(context.Background(), "req-42")
	if got := RequestIDFrom(ctx); got != "req-42" {
		t.Fatalf("RequestIDFrom = %q", got)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("empty context RequestIDFrom = %q", got)
	}
}
