package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceRing is the default capacity of a Tracer's ring of recent
// finished traces (what GET /debug/traces serves).
const DefaultTraceRing = 64

// Tracer builds span trees and retains the most recent finished root
// spans in a bounded ring. A nil *Tracer is a valid disabled tracer:
// Start on it returns a no-op span, so call sites never need to branch
// on whether tracing is on.
type Tracer struct {
	mu      sync.Mutex
	ring    []*Span // finished root spans, oldest first once full
	next    int
	size    int
	sink    io.Writer // optional JSONL sink for finished traces
	sinkErr error
}

// NewTracer returns a tracer retaining up to capacity finished traces
// (DefaultTraceRing when capacity is not positive).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{ring: make([]*Span, capacity)}
}

// SetSink directs every finished root span to w as one JSON line per
// trace (JSONL). The first write or encode error is retained and
// reported by SinkErr; tracing itself never fails.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.mu.Unlock()
}

// SinkErr reports the first error encountered writing traces to the
// sink, or nil.
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Start opens a span under ctx. If ctx already carries a span the new
// span becomes its child; otherwise it is a root span that will be
// recorded in the tracer's ring (and sink) when ended. The returned
// context carries the new span for further nesting.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx)
	//shvet:ignore nondet-flow span timestamps are observability metadata; offsets/durations are monotonic and results never depend on them
	s := &Span{tracer: t, parent: parent, name: name, start: time.Now()}
	if parent != nil {
		parent.addChild(s)
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartSpan opens a child span of the span carried by ctx. When ctx
// carries no span (tracing off for this call path) it returns ctx and a
// no-op nil span, so libraries can instrument unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.tracer.Start(ctx, name)
}

// spanKey is the context key carrying the current span.
type spanKey struct{}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// record retains a finished root span in the ring and writes it to the
// sink when one is set.
func (t *Tracer) record(s *Span) {
	var sink io.Writer
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	sink = t.sink
	t.mu.Unlock()

	if sink == nil {
		return
	}
	line, err := json.Marshal(s.JSON())
	if err == nil {
		line = append(line, '\n')
		_, err = sink.Write(line)
	}
	if err != nil {
		t.mu.Lock()
		if t.sinkErr == nil {
			t.sinkErr = err
		}
		t.mu.Unlock()
	}
}

// Recent returns the retained finished traces, oldest first, as
// serializable span trees.
func (t *Tracer) Recent() []SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, 0, t.size)
	if t.size < len(t.ring) {
		spans = append(spans, t.ring[:t.size]...)
	} else {
		spans = append(spans, t.ring[t.next:]...)
		spans = append(spans, t.ring[:t.next]...)
	}
	t.mu.Unlock()

	out := make([]SpanJSON, len(spans))
	for i, s := range spans {
		out[i] = s.JSON()
	}
	return out
}

// Span is one timed operation in a trace tree. Spans are created by
// Tracer.Start / StartSpan and finished with End. A nil *Span is a valid
// no-op span: every method is nil-safe, so instrumented code paths work
// unchanged with tracing disabled.
//
// Span identity is monotonic-only: the start field's wall clock reading
// is never exposed — JSON() emits offsets and durations computed from
// the monotonic clock — so traces carry no wall-clock timestamps.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	start  time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one ordered key/value annotation on a span. Attributes are a
// slice, not a map, so rendering order is deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SetAttr appends a key/value annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// addChild links a child span; safe for concurrent workers of one
// request.
func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End finishes the span, fixing its monotonic duration. Ending a root
// span records the whole trace in the tracer's ring and sink. End is
// idempotent; only the first call takes effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start) //shvet:ignore nondet-flow span duration is observability metadata, never part of model output
	s.mu.Unlock()
	if s.parent == nil {
		s.tracer.record(s)
	}
}

// Duration returns the span's duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// SpanJSON is the wire form of a span tree: name, monotonic start offset
// from the trace root, monotonic duration, ordered attributes, children.
// No wall-clock timestamps, by design.
type SpanJSON struct {
	Name       string     `json:"name"`
	StartNS    int64      `json:"start_ns"` // offset from the root span's start
	DurationNS int64      `json:"duration_ns"`
	Attrs      []Attr     `json:"attrs,omitempty"`
	Children   []SpanJSON `json:"children,omitempty"`
}

// JSON converts the span tree to its serializable form. Call it after
// End; an unfinished child renders with duration 0.
func (s *Span) JSON() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	root := s
	for root.parent != nil {
		root = root.parent
	}
	return s.jsonRel(root.start)
}

// jsonRel renders the span with offsets relative to the trace start.
func (s *Span) jsonRel(traceStart time.Time) SpanJSON {
	s.mu.Lock()
	out := SpanJSON{
		Name:       s.name,
		StartNS:    s.start.Sub(traceStart).Nanoseconds(),
		DurationNS: s.dur.Nanoseconds(),
	}
	attrs := make([]Attr, len(s.attrs))
	copy(attrs, s.attrs)
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()

	out.Attrs = attrs
	if len(children) > 0 {
		out.Children = make([]SpanJSON, len(children))
		for i, c := range children {
			out.Children[i] = c.jsonRel(traceStart)
		}
	}
	return out
}
