package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceRing is the default capacity of a Tracer's ring of recent
// finished traces (what GET /debug/traces serves).
const DefaultTraceRing = 64

// Tracer builds span trees and retains the most recent finished root
// spans in a bounded ring. A nil *Tracer is a valid disabled tracer:
// Start on it returns a no-op span, so call sites never need to branch
// on whether tracing is on.
type Tracer struct {
	ids *idGen

	mu      sync.Mutex
	ring    []*Span // finished root spans, oldest first once full
	next    int
	size    int
	sinkErr error

	// sinkMu serializes sink writes: root spans finish on arbitrary
	// handler goroutines, and interleaved writes would corrupt the JSONL
	// stream. It is separate from mu so a slow sink never blocks Start.
	sinkMu sync.Mutex
	sink   io.Writer // optional JSONL sink for finished traces
}

// NewTracer returns a tracer retaining up to capacity finished traces
// (DefaultTraceRing when capacity is not positive). Span and trace ids
// are seeded from crypto/rand so traces from different processes of one
// fleet never collide.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{ring: make([]*Span, capacity), ids: newIDGen()}
}

// SeedIDs re-seeds the tracer's id generator. Ids become a deterministic
// function of the seed and span creation order — for tests and golden
// fixtures only; production tracers keep their crypto/rand seed.
func (t *Tracer) SeedIDs(seed uint64) {
	if t == nil {
		return
	}
	t.ids = &idGen{seed: seed}
}

// SetSink directs every finished root span to w as one JSON line per
// trace (JSONL). Writes are serialized by the tracer, so w needs no
// locking of its own. The first write or encode error is retained and
// reported by SinkErr; tracing itself never fails.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.sinkMu.Lock()
	t.sink = w
	t.sinkMu.Unlock()
}

// SinkErr reports the first error encountered writing traces to the
// sink, or nil.
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Start opens a span under ctx. If ctx already carries a span the new
// span becomes its child, inheriting the trace id; otherwise it is a
// root span that will be recorded in the tracer's ring (and sink) when
// ended. A root span adopts the remote parent identity carried by ctx
// (ContextWithRemoteParent, from an incoming traceparent header) when
// there is one — joining the caller's distributed trace — and mints a
// fresh trace id when there is not. The returned context carries the new
// span for further nesting.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx)
	//shvet:ignore nondet-flow span timestamps are observability metadata; offsets/durations are monotonic and results never depend on them
	s := &Span{tracer: t, parent: parent, name: name, start: time.Now(), spanID: t.ids.spanID()}
	if parent != nil {
		s.traceID = parent.traceID
		s.parentID = parent.spanID
		parent.addChild(s)
	} else if remote, ok := RemoteParentFrom(ctx); ok {
		s.traceID = remote.TraceID
		s.parentID = remote.SpanID
	} else {
		s.traceID = t.ids.traceID()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartSpan opens a child span of the span carried by ctx. When ctx
// carries no span (tracing off for this call path) it returns ctx and a
// no-op nil span, so libraries can instrument unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.tracer.Start(ctx, name)
}

// spanKey is the context key carrying the current span.
type spanKey struct{}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// record retains a finished root span in the ring and writes it to the
// sink when one is set.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	t.mu.Unlock()

	t.sinkMu.Lock()
	sink := t.sink
	if sink == nil {
		t.sinkMu.Unlock()
		return
	}
	line, err := json.Marshal(s.JSON())
	if err == nil {
		line = append(line, '\n')
		_, err = sink.Write(line)
	}
	t.sinkMu.Unlock()
	if err != nil {
		t.mu.Lock()
		if t.sinkErr == nil {
			t.sinkErr = err
		}
		t.mu.Unlock()
	}
}

// Recent returns the retained finished traces, oldest first, as
// serializable span trees.
func (t *Tracer) Recent() []SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, 0, t.size)
	if t.size < len(t.ring) {
		spans = append(spans, t.ring[:t.size]...)
	} else {
		spans = append(spans, t.ring[t.next:]...)
		spans = append(spans, t.ring[:t.next]...)
	}
	t.mu.Unlock()

	out := make([]SpanJSON, len(spans))
	for i, s := range spans {
		out[i] = s.JSON()
	}
	return out
}

// Span is one timed operation in a trace tree. Spans are created by
// Tracer.Start / StartSpan and finished with End. A nil *Span is a valid
// no-op span: every method is nil-safe, so instrumented code paths work
// unchanged with tracing disabled.
//
// Span timing is monotonic-only: the start field's wall clock reading
// is never exposed — JSON() emits offsets and durations computed from
// the monotonic clock — so traces carry no wall-clock timestamps.
//
// Every span additionally carries a W3C-style identity: the trace id
// shared by the whole (possibly multi-process) request, its own span id,
// and its parent's span id — either the in-process parent or, for a root
// span continuing an incoming traceparent, the remote caller's span.
type Span struct {
	tracer   *Tracer
	parent   *Span
	name     string
	start    time.Time
	traceID  TraceID
	spanID   SpanID
	parentID SpanID // zero for a root span with no remote parent

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one ordered key/value annotation on a span. Attributes are a
// slice, not a map, so rendering order is deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Context returns the span's cross-process identity, the pair a caller
// forwards as a traceparent header so spans in the next process parent
// correctly. A nil span returns the zero (invalid) context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID}
}

// SetAttr appends a key/value annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// addChild links a child span; safe for concurrent workers of one
// request.
func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End finishes the span, fixing its monotonic duration. Ending a root
// span records the whole trace in the tracer's ring and sink. End is
// idempotent; only the first call takes effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start) //shvet:ignore nondet-flow span duration is observability metadata, never part of model output
	s.mu.Unlock()
	if s.parent == nil {
		s.tracer.record(s)
	}
}

// Duration returns the span's duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// SpanJSON is the wire form of a span tree: name, identity, monotonic
// start offset from the trace root, monotonic duration, ordered
// attributes, children. No wall-clock timestamps, by design.
//
// The trace id appears once, on the tree's root; every span carries its
// own span id, and its parent's span id. A root's parent_span_id is the
// remote caller's span (set when the process continued an incoming
// traceparent) or absent for a locally minted trace — which is exactly
// the link cmd/tracecat uses to stitch per-process JSONL sinks into one
// fleet-wide trace.
type SpanJSON struct {
	Name       string     `json:"name"`
	TraceID    string     `json:"trace_id,omitempty"` // root spans only
	SpanID     string     `json:"span_id,omitempty"`
	ParentID   string     `json:"parent_span_id,omitempty"`
	StartNS    int64      `json:"start_ns"` // offset from the root span's start
	DurationNS int64      `json:"duration_ns"`
	Attrs      []Attr     `json:"attrs,omitempty"`
	Children   []SpanJSON `json:"children,omitempty"`
}

// JSON converts the span tree to its serializable form. Call it after
// End; an unfinished child renders with duration 0.
func (s *Span) JSON() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	root := s
	for root.parent != nil {
		root = root.parent
	}
	out := s.jsonRel(root.start)
	if s == root {
		out.TraceID = s.traceID.String()
	}
	return out
}

// jsonRel renders the span with offsets relative to the trace start.
func (s *Span) jsonRel(traceStart time.Time) SpanJSON {
	s.mu.Lock()
	out := SpanJSON{
		Name:       s.name,
		SpanID:     s.spanID.String(),
		StartNS:    s.start.Sub(traceStart).Nanoseconds(),
		DurationNS: s.dur.Nanoseconds(),
	}
	if !s.parentID.IsZero() {
		out.ParentID = s.parentID.String()
	}
	attrs := make([]Attr, len(s.attrs))
	copy(attrs, s.attrs)
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()

	out.Attrs = attrs
	if len(children) > 0 {
		out.Children = make([]SpanJSON, len(children))
		for i, c := range children {
			out.Children[i] = c.jsonRel(traceStart)
		}
	}
	return out
}
