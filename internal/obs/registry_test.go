package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRenderTwiceByteStable renders a populated registry twice with no
// observations in between and requires byte-identical output — the same
// discipline the experiment tables follow.
func TestRenderTwiceByteStable(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_requests_total", "Requests.")
	g := r.Gauge("t_inflight", "In flight.")
	r.GaugeFunc("t_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	r.CounterFunc("t_evictions_total", "Evictions.", func() int64 { return 3 })
	s := r.Summary("t_latency_seconds", "Latency.")

	c.Add(7)
	g.Set(2)
	for i := 1; i <= 10; i++ {
		s.Observe(float64(i))
	}

	var a, b bytes.Buffer
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if a.String() != b.String() {
		t.Fatalf("render-twice mismatch:\n--- first ---\n%s--- second ---\n%s", a.String(), b.String())
	}
	for _, want := range []string{
		"# TYPE t_requests_total counter\nt_requests_total 7\n",
		"# TYPE t_inflight gauge\nt_inflight 2\n",
		"t_uptime_seconds 12.5\n",
		"t_evictions_total 3\n",
		"t_latency_seconds_count 10\n",
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("render missing %q:\n%s", want, a.String())
		}
	}
}

// TestRegistrationOrderIsRenderOrder pins that metrics render in the
// order they were registered, not sorted or map-ordered.
func TestRegistrationOrderIsRenderOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "Z.")
	r.Counter("aa_first_total", "A.")
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if strings.Index(out, "zz_last_total") > strings.Index(out, "aa_first_total") {
		t.Fatalf("metrics rendered out of registration order:\n%s", out)
	}
}

// TestDuplicateRegistrationPanics guards the one-series-per-name
// contract.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("second registration of dup_total did not panic")
		}
	}()
	r.Gauge("dup_total", "Second.")
}

// TestSummaryQuantilesNearestRank table-drives the nearest-rank quantile
// selection, pinning the fix for the truncation bias that dragged
// small-window quantiles low (e.g. p99 of 10 samples must be the 10th
// value, not the 9th).
func TestSummaryQuantilesNearestRank(t *testing.T) {
	cases := []struct {
		name string
		n    int // observations: 1, 2, ..., n
		qs   []float64
		want []float64
	}{
		{"single sample", 1, []float64{0.5, 0.9, 0.99}, []float64{1, 1, 1}},
		{"two samples median rounds up", 2, []float64{0.5, 0.99}, []float64{2, 2}},
		{"ten samples", 10, []float64{0.5, 0.9, 0.99}, []float64{6, 9, 10}},
		{"hundred samples", 100, []float64{0.5, 0.9, 0.99}, []float64{51, 90, 99}},
		{"zero quantile", 10, []float64{0}, []float64{1}},
		{"one quantile", 10, []float64{1}, []float64{10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			s := r.Summary(fmt.Sprintf("q_%d_seconds", tc.n), "Quantile fixture.")
			for i := 1; i <= tc.n; i++ {
				s.Observe(float64(i))
			}
			got, count, sum := s.Quantiles(tc.qs)
			if count != int64(tc.n) {
				t.Errorf("count = %d, want %d", count, tc.n)
			}
			wantSum := float64(tc.n*(tc.n+1)) / 2
			if sum != wantSum {
				t.Errorf("sum = %g, want %g", sum, wantSum)
			}
			for i, q := range tc.qs {
				if got[i] != tc.want[i] {
					t.Errorf("q=%g: got %g, want %g", q, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestSummaryEmpty covers the no-observations render path.
func TestSummaryEmpty(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("empty_seconds", "Empty.")
	got, count, sum := s.Quantiles([]float64{0.5})
	if got[0] != 0 || count != 0 || sum != 0 {
		t.Fatalf("empty summary: got %v, count %d, sum %g", got, count, sum)
	}
}

// TestSummaryWindowBounded fills past the window and checks quantiles
// only reflect the most recent SummaryWindow observations while the
// lifetime count keeps growing.
func TestSummaryWindowBounded(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("windowed_seconds", "Windowed.")
	total := SummaryWindow + 100
	for i := 0; i < total; i++ {
		s.Observe(float64(i))
	}
	got, count, _ := s.Quantiles([]float64{0})
	if count != int64(total) {
		t.Errorf("lifetime count = %d, want %d", count, total)
	}
	// The oldest 100 observations (values 0..99) fell out of the window.
	if got[0] != 100 {
		t.Errorf("window minimum = %g, want 100 (old samples must be evicted)", got[0])
	}
}

// TestConcurrentObserveAndRender hammers every metric type from many
// goroutines while rendering concurrently; run under -race this pins the
// registry's thread-safety.
func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "C.")
	g := r.Gauge("conc_gauge", "G.")
	s := r.Summary("conc_seconds", "S.")
	r.GaugeFunc("conc_func", "F.", func() float64 { return float64(c.Load()) })

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				s.Observe(float64(i + w))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				r.WritePrometheus(&buf)
			}
		}()
	}
	wg.Wait()

	if got := c.Load(); got != 8*500 {
		t.Errorf("counter = %d, want %d", got, 8*500)
	}
	if got := s.Count(); got != 8*500 {
		t.Errorf("summary count = %d, want %d", got, 8*500)
	}
}
