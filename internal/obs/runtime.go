package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// RuntimeMetrics registers the Go runtime health series every process
// exposes, named <prefix>_goroutines, <prefix>_heap_bytes,
// <prefix>_gc_cycles_total and <prefix>_gc_pause_seconds_total. Values
// are sampled from runtime/metrics at render time, so scrapes always see
// the current runtime state with zero steady-state cost. Call it last:
// rendering order is registration order and the pinned-layout tests put
// the runtime block at the end.
func (r *Registry) RuntimeMetrics(prefix string) {
	r.GaugeFunc(prefix+"_goroutines",
		"Current number of live goroutines.",
		func() float64 { return sampleRuntime("/sched/goroutines:goroutines") })
	r.GaugeFunc(prefix+"_heap_bytes",
		"Bytes of memory occupied by live heap objects.",
		func() float64 { return sampleRuntime("/memory/classes/heap/objects:bytes") })
	r.CounterFunc(prefix+"_gc_cycles_total",
		"Completed garbage collection cycles.",
		func() int64 { return int64(sampleRuntime("/gc/cycles/total:gc-cycles")) })
	r.register(prefix+"_gc_pause_seconds_total", &floatCounterFunc{
		name: prefix + "_gc_pause_seconds_total",
		help: "Approximate total stop-the-world GC pause time, estimated from the runtime pause histogram.",
		fn:   gcPauseSecondsTotal,
	})
}

// sampleRuntime reads one scalar runtime/metrics sample, tolerating both
// numeric kinds and unknown names (0 on anything else) so the metric set
// degrades gracefully across Go versions.
func sampleRuntime(name string) float64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	switch s[0].Value.Kind() {
	case metrics.KindUint64:
		return float64(s[0].Value.Uint64())
	case metrics.KindFloat64:
		return s[0].Value.Float64()
	}
	return 0
}

// gcPauseSecondsTotal estimates cumulative GC pause seconds from the
// runtime's pause-duration histogram (bucket midpoints × counts — the
// runtime exposes no exact total). Tries the modern metric name first,
// then the pre-1.22 spelling.
func gcPauseSecondsTotal() float64 {
	for _, name := range []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"} {
		s := []metrics.Sample{{Name: name}}
		metrics.Read(s)
		if s[0].Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := s[0].Value.Float64Histogram()
		if h == nil || len(h.Buckets) != len(h.Counts)+1 {
			continue
		}
		var total float64
		for i, n := range h.Counts {
			if n == 0 {
				continue
			}
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			mid := (lo + hi) / 2
			switch {
			case math.IsInf(lo, -1) && math.IsInf(hi, 1):
				continue
			case math.IsInf(lo, -1):
				mid = hi
			case math.IsInf(hi, 1):
				mid = lo
			}
			total += mid * float64(n)
		}
		return total
	}
	return 0
}

// floatCounterFunc renders a float-valued counter sampled from fn at
// render time (runtime counters like estimated GC pause seconds are not
// integers).
type floatCounterFunc struct {
	name, help string
	fn         func() float64
}

func (c *floatCounterFunc) write(w io.Writer) {
	writeFloatCounterText(w, c.name, c.help, c.fn())
}

// writeFloatCounterText emits one Prometheus counter with a float value.
func writeFloatCounterText(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
}
