package obs

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// TestFlightRecorderSlowest pins the slowest-set contract: a full
// recorder keeps exactly the top-capacity requests by duration, ordered
// slowest first, and fast requests never evict slower ones.
func TestFlightRecorderSlowest(t *testing.T) {
	f := NewFlightRecorder(3)
	for i, d := range []int64{50, 10, 90, 30, 70} {
		f.Record(FlightRecord{RequestID: fmt.Sprintf("req-%d", i), DurationNS: d})
	}
	snap := f.Snapshot()
	if len(snap.Slowest) != 3 {
		t.Fatalf("kept %d slowest, want 3", len(snap.Slowest))
	}
	var got []int64
	for _, r := range snap.Slowest {
		got = append(got, r.DurationNS)
	}
	if got[0] != 90 || got[1] != 70 || got[2] != 50 {
		t.Errorf("slowest durations = %v, want [90 70 50]", got)
	}
	if len(snap.Errored) != 0 {
		t.Errorf("errored ring holds %d, want 0", len(snap.Errored))
	}
}

// TestFlightRecorderErrored pins the errored ring: errors always enter
// regardless of duration, the ring is bounded, and Snapshot returns them
// most recent first.
func TestFlightRecorderErrored(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Record(FlightRecord{RequestID: "a", Err: "boom", DurationNS: 1})
	f.Record(FlightRecord{RequestID: "b", Status: 503, DurationNS: 1})
	f.Record(FlightRecord{RequestID: "c", Err: "late", DurationNS: 1})
	f.Record(FlightRecord{RequestID: "ok", Status: 200, DurationNS: 999})

	snap := f.Snapshot()
	if len(snap.Errored) != 2 {
		t.Fatalf("errored ring holds %d, want 2", len(snap.Errored))
	}
	if snap.Errored[0].RequestID != "c" || snap.Errored[1].RequestID != "b" {
		t.Errorf("errored = [%s %s], want most-recent-first [c b]",
			snap.Errored[0].RequestID, snap.Errored[1].RequestID)
	}
	// 4xx statuses are client errors, not service failures.
	f.Record(FlightRecord{RequestID: "bad-req", Status: 400})
	if got := f.Snapshot().Errored; got[0].RequestID == "bad-req" {
		t.Error("a 400 response entered the errored ring")
	}
}

// TestFlightRecorderJSON pins the wire shape of a snapshot — the
// /debug/flight contract — including deterministic phase ordering and
// empty rings rendering as [] rather than null.
func TestFlightRecorderJSON(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Record(FlightRecord{
		TraceID:    "0102030405060708090a0b0c0d0e0f10",
		RequestID:  "req-1",
		Path:       "/v1/infer",
		Status:     200,
		DurationNS: 1500,
		Columns:    3,
		Phases:     []Phase{{Name: "queue", DurationNS: 100}, {Name: "predict", DurationNS: 900}},
		Notes:      []string{"shard r0", "hedged to r1"},
	})
	b, err := json.Marshal(f.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	want := `{"slowest":[{"trace_id":"0102030405060708090a0b0c0d0e0f10","request_id":"req-1","path":"/v1/infer","status":200,"duration_ns":1500,"columns":3,"phases":[{"name":"queue","duration_ns":100},{"name":"predict","duration_ns":900}],"notes":["shard r0","hedged to r1"]}],"errored":[]}`
	if got != want {
		t.Errorf("snapshot JSON drifted.\ngot:  %s\nwant: %s", got, want)
	}

	var nilRec *FlightRecorder
	nilRec.Record(FlightRecord{}) // must not panic
	b, err = json.Marshal(nilRec.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"slowest":[],"errored":[]}` {
		t.Errorf("nil recorder snapshot = %s", b)
	}
}

// TestRuntimeMetricsRender checks the runtime series render with sane
// live values: goroutines >= 1, heap bytes > 0, and all four names
// present in order.
func TestRuntimeMetricsRender(t *testing.T) {
	r := NewRegistry()
	r.RuntimeMetrics("proc")
	runtime.GC() // guarantee at least one GC cycle is visible

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	idx := -1
	for _, name := range []string{"proc_goroutines", "proc_heap_bytes", "proc_gc_cycles_total", "proc_gc_pause_seconds_total"} {
		at := strings.Index(out, "# TYPE "+name+" ")
		if at < 0 {
			t.Fatalf("missing runtime series %s:\n%s", name, out)
		}
		if at < idx {
			t.Errorf("series %s out of registration order", name)
		}
		idx = at
	}
	var goroutines, heap, cycles float64
	if _, err := fmt.Sscanf(lineValue(t, out, "proc_goroutines"), "%g", &goroutines); err != nil || goroutines < 1 {
		t.Errorf("goroutines = %g (err %v), want >= 1", goroutines, err)
	}
	if _, err := fmt.Sscanf(lineValue(t, out, "proc_heap_bytes"), "%g", &heap); err != nil || heap <= 0 {
		t.Errorf("heap bytes = %g (err %v), want > 0", heap, err)
	}
	if _, err := fmt.Sscanf(lineValue(t, out, "proc_gc_cycles_total"), "%g", &cycles); err != nil || cycles < 1 {
		t.Errorf("gc cycles = %g (err %v), want >= 1 after runtime.GC()", cycles, err)
	}
}

// lineValue extracts the sample value of a plain (unlabeled) series.
func lineValue(t *testing.T, out, name string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("no sample line for %s", name)
	return ""
}
