// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md section 4 for the experiment index, and the
// "Experiment ↔ source ↔ command" table in EXPERIMENTS.md for the
// file-by-file mapping to paper table numbers). Each experiment is a
// function from a shared Env (corpus + split + base features) to a result
// struct with a formatted String method; cmd/benchmark drives them.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"sortinghat/internal/core"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/modelsel"
	"sortinghat/internal/obs"
	"sortinghat/internal/synth"
)

// Config sizes the experiments. Full reproduces the paper-scale corpus;
// the default is sized for a small single-core machine (same shapes,
// smaller constants).
type Config struct {
	CorpusN   int   // labeled corpus size
	Seed      int64 // master seed
	RFTrees   int   // forest size for the type-inference RF
	RFDepth   int
	CNNEpochs int
	Quick     bool // further shrinks the slowest experiments
}

// DefaultConfig is the small-machine configuration.
func DefaultConfig() Config {
	return Config{CorpusN: 4000, Seed: 7, RFTrees: 60, RFDepth: 25, CNNEpochs: 5}
}

// FullConfig reproduces the paper-scale corpus (9,921 columns).
func FullConfig() Config {
	return Config{CorpusN: synth.PaperCorpusSize, Seed: 7, RFTrees: 100, RFDepth: 25, CNNEpochs: 6}
}

// Env is the shared experimental environment: the labeled corpus, its base
// featurization, and the 80:20 stratified train/test split of Section 4.1.
type Env struct {
	Cfg    Config
	Corpus []data.LabeledColumn
	Bases  []featurize.Base
	Labels []int

	TrainIdx []int
	TestIdx  []int

	// Ctx, when set by the driver, carries the current experiment's trace
	// span; experiments hang their phase spans off it via obs.StartSpan.
	// Nil means tracing off (Context falls back to context.Background()).
	Ctx context.Context
}

// NewEnv generates the corpus and split for a configuration.
func NewEnv(cfg Config) *Env {
	return NewEnvCtx(context.Background(), cfg)
}

// NewEnvCtx is NewEnv with tracing: when ctx carries an obs span, the
// three setup phases become child spans "corpus", "featurize", and
// "split". The returned Env carries ctx.
func NewEnvCtx(ctx context.Context, cfg Config) *Env {
	ccfg := synth.DefaultCorpusConfig()
	ccfg.N = cfg.CorpusN
	ccfg.Seed = cfg.Seed
	_, csp := obs.StartSpan(ctx, "corpus")
	csp.SetAttr("columns", strconv.Itoa(ccfg.N))
	corpus := synth.GenerateCorpus(ccfg)
	csp.End()

	_, fsp := obs.StartSpan(ctx, "featurize")
	bases, labels := core.ExtractBases(corpus, cfg.Seed+1)
	fsp.End()

	_, ssp := obs.StartSpan(ctx, "split")
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	train, test := modelsel.StratifiedSplit(labels, 0.2, rng)
	ssp.End()
	return &Env{Cfg: cfg, Corpus: corpus, Bases: bases, Labels: labels,
		TrainIdx: train, TestIdx: test, Ctx: ctx}
}

// Context returns the context the experiment runs under: Ctx when the
// driver set one, context.Background() otherwise.
func (e *Env) Context() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// TrainBases returns the training bases and labels.
func (e *Env) TrainBases() ([]featurize.Base, []int) {
	return gather(e.Bases, e.TrainIdx), modelsel.GatherInts(e.Labels, e.TrainIdx)
}

// TestLabels returns the held-out test labels as class indices.
func (e *Env) TestLabels() []int { return modelsel.GatherInts(e.Labels, e.TestIdx) }

// gather selects slice elements by index.
func gather[T any](s []T, idx []int) []T {
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// table is a tiny fixed-width text table builder used by every experiment's
// String method.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// f3 formats a float with 3 decimals, or "-" for negative sentinels.
func f3(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// pct formats a 0..1 fraction as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
