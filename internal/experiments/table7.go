package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"sortinghat/internal/core"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/ml/modelsel"
)

// Table7Row is the leave-datafile-out accuracy of one model on the
// (X_stats, X2_name) feature set.
type Table7Row struct {
	Model            string
	Train, Val, Test float64
}

// Table7Result reproduces the leave-datafile-out stress test (Appendix
// I.2): files are split 60:20:20 so every column of a file lands in the
// same partition, and the test partition contains only unseen files.
type Table7Result struct{ Rows []Table7Row }

// Table7 runs the grouped-split evaluation for the four classical models.
func Table7(env *Env) (*Table7Result, error) {
	groups := make([]int, len(env.Corpus))
	for i := range env.Corpus {
		groups[i] = env.Corpus[i].FileID
	}
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 17))
	trainIdx, valIdx, testIdx := modelsel.GroupedSplit(groups, 0.6, 0.2, rng)

	fs := featurize.DefaultFeatureSet() // X_stats, X2_name
	trainBases := gather(env.Bases, trainIdx)
	trainLabels := modelsel.GatherInts(env.Labels, trainIdx)
	evalOn := func(p *core.Pipeline, idx []int) float64 {
		pred := make([]int, len(idx))
		for i, j := range idx {
			t, _ := p.PredictBase(&env.Bases[j])
			pred[i] = t.Index()
		}
		return metrics.Accuracy(modelsel.GatherInts(env.Labels, idx), pred)
	}

	models := []struct {
		name string
		opts core.Options
	}{
		{"Logistic Regression", core.Options{Model: core.LogReg, FeatureSet: fs, Seed: env.Cfg.Seed}},
		{"RBF-SVM", core.Options{Model: core.RBFSVM, FeatureSet: fs, Seed: env.Cfg.Seed}},
		{"Random Forest", core.Options{Model: core.RandomForest, FeatureSet: fs, Seed: env.Cfg.Seed,
			RFTrees: env.Cfg.RFTrees, RFDepth: env.Cfg.RFDepth}},
		{"k-NN", core.Options{Model: core.KNN, FeatureSet: fs, Seed: env.Cfg.Seed}},
	}
	res := &Table7Result{}
	for _, m := range models {
		pipe, err := core.TrainOnBases(trainBases, trainLabels, m.opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: table7: training %s: %w", m.name, err)
		}
		row := Table7Row{Model: m.name, Val: evalOn(pipe, valIdx), Test: evalOn(pipe, testIdx)}
		if m.opts.Model != core.KNN { // train accuracy is vacuous for k-NN
			row.Train = evalOn(pipe, trainIdx)
		} else {
			row.Train = -1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the leave-datafile-out table.
func (r *Table7Result) String() string {
	var b strings.Builder
	b.WriteString("Table 7: leave-datafile-out accuracy on [X_stats, X2_name]\n\n")
	t := &table{header: []string{"Model", "Train", "Validation", "Test"}}
	for _, row := range r.Rows {
		tr := "-"
		if row.Train >= 0 {
			tr = f3(row.Train)
		}
		t.addRow(row.Model, tr, f3(row.Val), f3(row.Test))
	}
	b.WriteString(t.String())
	return b.String()
}
