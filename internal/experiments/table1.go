package experiments

import (
	"fmt"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/core"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/obs"
	"sortinghat/internal/tools"
)

// Table1Result holds the head-to-head comparison of every approach on the
// held-out test set: Tables 1 (binarized P/R/accuracy), 8 (F1) and 17
// (confusion matrices) of the paper, plus the 9-class accuracies quoted in
// Section 4.3 for the rule baseline and Sherlock.
type Table1Result struct {
	Approaches []string
	Confusions map[string]*metrics.ConfusionMatrix
	NineClass  map[string]float64
}

// classesShown mirrors the classes the paper reports per-class scores for.
var classesShown = []ftype.FeatureType{
	ftype.Numeric, ftype.Categorical, ftype.Datetime, ftype.Sentence,
	ftype.URL, ftype.EmbeddedNumber, ftype.List,
	ftype.NotGeneralizable, ftype.ContextSpecific,
}

// Table1 trains the ML models on the training split and compares them with
// the industrial tools, the rule baseline and Sherlock on the held-out
// test set.
func Table1(env *Env) (*Table1Result, error) {
	res := &Table1Result{
		Confusions: map[string]*metrics.ConfusionMatrix{},
		NineClass:  map[string]float64{},
	}
	yTest := env.TestLabels()

	// Rule/syntax approaches run directly on the raw columns.
	ruleApproaches := []tools.Inferrer{
		tools.TFDV{}, tools.Pandas{}, tools.TransmogrifAI{},
		tools.AutoGluon{}, tools.Sherlock{}, tools.RuleBaseline{},
	}
	_, rsp := obs.StartSpan(env.Context(), "tools")
	for _, tool := range ruleApproaches {
		pred := make([]int, len(env.TestIdx))
		for i, j := range env.TestIdx {
			pred[i] = tool.Infer(&env.Corpus[j].Column).Index()
		}
		cm := metrics.Confusion(yTest, pred, ftype.NumBaseClasses)
		res.Approaches = append(res.Approaches, tool.Name())
		res.Confusions[tool.Name()] = cm
		res.NineClass[tool.Name()] = cm.MultiAccuracy()
	}
	rsp.End()

	// ML models trained on our labeled data. Feature sets follow Section
	// 3.3: classical models use stats + name and sample bigrams; the CNN
	// uses raw characters plus stats.
	trainBases, trainLabels := env.TrainBases()
	mlModels := []struct {
		name string
		opts core.Options
	}{
		{"Log Reg", core.Options{Model: core.LogReg, FeatureSet: featurize.FullFeatureSet(), Seed: env.Cfg.Seed}},
		{"CNN", core.Options{Model: core.CNN,
			FeatureSet: featurize.FeatureSet{UseStats: true, UseName: true, SampleCount: 1},
			Seed:       env.Cfg.Seed, CNNEpochs: env.Cfg.CNNEpochs}},
		{"Rand Forest", core.Options{Model: core.RandomForest, FeatureSet: featurize.DefaultFeatureSet(),
			Seed: env.Cfg.Seed, RFTrees: env.Cfg.RFTrees, RFDepth: env.Cfg.RFDepth}},
	}
	for _, m := range mlModels {
		_, tsp := obs.StartSpan(env.Context(), "train")
		tsp.SetAttr("model", m.name)
		pipe, err := core.TrainOnBases(trainBases, trainLabels, m.opts)
		tsp.End()
		if err != nil {
			return nil, fmt.Errorf("experiments: table1: training %s: %w", m.name, err)
		}
		_, esp := obs.StartSpan(env.Context(), "eval")
		esp.SetAttr("model", m.name)
		pred := make([]int, len(env.TestIdx))
		for i, j := range env.TestIdx {
			t, _ := pipe.PredictBase(&env.Bases[j])
			pred[i] = t.Index()
		}
		esp.End()
		cm := metrics.Confusion(yTest, pred, ftype.NumBaseClasses)
		res.Approaches = append(res.Approaches, m.name)
		res.Confusions[m.name] = cm
		res.NineClass[m.name] = cm.MultiAccuracy()
	}
	return res, nil
}

// String renders Table 1 (precision/recall/binarized accuracy per class),
// Table 8 (F1), the Section 4.3 9-class accuracies, and the Table 17
// confusion matrices.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: binarized class-specific accuracy on the held-out test set\n\n")
	for _, cls := range classesShown {
		fmt.Fprintf(&b, "-- %s --\n", cls)
		t := &table{header: []string{"Approach", "Precision", "Recall", "Accuracy", "F1"}}
		for _, a := range r.Approaches {
			s := r.Confusions[a].Binarized(cls.Index())
			t.addRow(a, f3(s.Precision), f3(s.Recall), f3(s.Accuracy), f3(s.F1))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	b.WriteString("9-class accuracy (Section 4.3)\n")
	t := &table{header: []string{"Approach", "9-class accuracy"}}
	for _, a := range r.Approaches {
		t.addRow(a, f3(r.NineClass[a]))
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
	for _, a := range []string{"Rule-based", "Rand Forest", "Sherlock"} {
		if cm, ok := r.Confusions[a]; ok {
			fmt.Fprintf(&b, "Table 17 confusion matrix: %s (rows=actual, cols=predicted)\n%s\n", a, cm)
		}
	}
	return b.String()
}
