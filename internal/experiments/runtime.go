package experiments

import (
	"fmt"
	"strings"
	"time"

	"sortinghat/internal/core"
	"sortinghat/internal/featurize"
	"sortinghat/internal/obs"
)

// Figure7Row is the per-model prediction runtime breakdown: base
// featurization, model-specific feature extraction, and inference, averaged
// per column (the paper's Figure 7).
type Figure7Row struct {
	Model       string
	BaseFeatUs  float64 // µs per column
	ExtractUs   float64
	InferenceUs float64
	TotalUs     float64
}

// Figure7Result holds the runtime breakdown for all five models.
type Figure7Result struct {
	Rows    []Figure7Row
	Columns int
}

// Figure7 measures online prediction cost per column for every model
// family, mirroring the paper's breakdown: base featurization is shared;
// classical models additionally pay for n-gram feature extraction; k-NN and
// the CNN consume raw characters directly.
func Figure7(env *Env) (*Figure7Result, error) {
	trainBases, trainLabels := env.TrainBases()
	n := len(env.TestIdx)
	if env.Cfg.Quick && n > 300 {
		n = 300
	}
	testIdx := env.TestIdx[:n]

	// Base featurization time (shared by all models).
	//shvet:ignore nondet-flow Figure 7 measures wall-clock runtime; timings are the experiment's output, not a hidden input
	baseStart := time.Now()
	_, bsp := obs.StartSpan(env.Context(), "featurize")
	for _, j := range testIdx {
		featurize.ExtractFirstN(&env.Corpus[j].Column, featurize.SampleCount)
	}
	bsp.End()
	//shvet:ignore nondet-flow Figure 7 reports elapsed time by design; see header note about runtime variance
	basePer := float64(time.Since(baseStart).Microseconds()) / float64(n)

	models := []struct {
		name string
		opts core.Options
	}{
		{"Logistic Regression", core.Options{Model: core.LogReg, FeatureSet: featurize.FullFeatureSet(), Seed: env.Cfg.Seed}},
		{"RBF-SVM", core.Options{Model: core.RBFSVM, FeatureSet: featurize.FullFeatureSet(), Seed: env.Cfg.Seed}},
		{"Random Forest", core.Options{Model: core.RandomForest, FeatureSet: featurize.DefaultFeatureSet(),
			Seed: env.Cfg.Seed, RFTrees: env.Cfg.RFTrees, RFDepth: env.Cfg.RFDepth}},
		{"k-NN", core.Options{Model: core.KNN, FeatureSet: featurize.DefaultFeatureSet(), Seed: env.Cfg.Seed}},
		{"CNN", core.Options{Model: core.CNN,
			FeatureSet: featurize.FeatureSet{UseStats: true, UseName: true, SampleCount: 1},
			Seed:       env.Cfg.Seed, CNNEpochs: 1}},
	}
	res := &Figure7Result{Columns: n}
	for _, m := range models {
		mctx, msp := obs.StartSpan(env.Context(), "model")
		msp.SetAttr("model", m.name)
		_, tsp := obs.StartSpan(mctx, "train")
		pipe, err := core.TrainOnBases(trainBases, trainLabels, m.opts)
		tsp.End()
		if err != nil {
			msp.End()
			return nil, fmt.Errorf("experiments: figure7: training %s: %w", m.name, err)
		}
		// Model-specific feature extraction (vectorization); only the
		// classical models pay this.
		var extractPer float64
		classical := m.opts.Model == core.LogReg || m.opts.Model == core.RBFSVM || m.opts.Model == core.RandomForest
		if classical {
			start := time.Now()
			for _, j := range testIdx {
				_ = m.opts.FeatureSet.Vector(&env.Bases[j])
			}
			extractPer = float64(time.Since(start).Microseconds()) / float64(n)
		}
		// Inference (includes vectorization for classical models; subtract
		// the measured extraction so the buckets are disjoint).
		start := time.Now()
		_, psp := obs.StartSpan(mctx, "predict")
		for _, j := range testIdx {
			pipe.PredictBase(&env.Bases[j])
		}
		psp.End()
		msp.End()
		inferPer := float64(time.Since(start).Microseconds())/float64(n) - extractPer
		if inferPer < 0 {
			inferPer = 0
		}
		res.Rows = append(res.Rows, Figure7Row{
			Model:       m.name,
			BaseFeatUs:  basePer,
			ExtractUs:   extractPer,
			InferenceUs: inferPer,
			TotalUs:     basePer + extractPer + inferPer,
		})
	}
	return res, nil
}

// String renders the runtime breakdown.
func (r *Figure7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: prediction runtime breakdown per column (µs, averaged over %d test columns)\n\n", r.Columns)
	t := &table{header: []string{"Model", "Base featurization", "Feature extraction", "Inference", "Total"}}
	for _, row := range r.Rows {
		t.addRow(row.Model,
			fmt.Sprintf("%.1f", row.BaseFeatUs),
			fmt.Sprintf("%.1f", row.ExtractUs),
			fmt.Sprintf("%.1f", row.InferenceUs),
			fmt.Sprintf("%.1f", row.TotalUs))
	}
	b.WriteString(t.String())
	b.WriteString("\n(The paper reports all models under 0.2 s/column; shapes match: distance-based k-NN slowest, classical models dominated by feature extraction.)\n")
	return b.String()
}
