package experiments

import (
	"fmt"
	"math"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/downstream"
	"sortinghat/internal/featurize"
	"sortinghat/internal/synth"
	"sortinghat/internal/tools"
)

// Table15Result is the double-representation study (Appendix I.5.2): for
// the 25 classification datasets, integer columns are routed to both the
// numeric and one-hot representations. Existing tools double-represent
// every integer column; "NewRF" is OurRF adapted to double-represent only
// integer columns whose class confidence falls below 0.4.
type Table15Result struct {
	Tools        []string
	Underperform map[string]int // vs single-representation truth
	UnderBase    map[string]int // vs the tool's own single-rep baseline
	OutperfBase  map[string]int
	Best         map[string]int
	Datasets     int
}

// Table15 runs the study. It reuses the environment's OurRF.
func Table15(env *Env) (*Table15Result, error) {
	ourRF, err := TrainOurRF(env)
	if err != nil {
		return nil, fmt.Errorf("experiments: table15: %w", err)
	}
	suite := suiteFor(env)

	type entry struct {
		name   string
		types  func(d *synth.Downstream) []ftype.FeatureType
		double func(d *synth.Downstream, types []ftype.FeatureType) []bool
	}
	allInt := func(d *synth.Downstream, _ []ftype.FeatureType) []bool {
		out := make([]bool, d.Data.NumCols()-1)
		for c := range out {
			out[c] = downstream.IsIntegerColumn(&d.Data.Columns[c])
		}
		return out
	}
	entries := []entry{
		{"Pandas", func(d *synth.Downstream) []ftype.FeatureType { return downstream.InferTypes(d, tools.Pandas{}) }, allInt},
		{"TFDV", func(d *synth.Downstream) []ftype.FeatureType { return downstream.InferTypes(d, tools.TFDV{}) }, allInt},
		{"AutoGluon", func(d *synth.Downstream) []ftype.FeatureType { return downstream.InferTypes(d, tools.AutoGluon{}) }, allInt},
		{"NewRF", func(d *synth.Downstream) []ftype.FeatureType { return downstream.InferTypes(d, ourRF) },
			func(d *synth.Downstream, types []ftype.FeatureType) []bool {
				out := make([]bool, d.Data.NumCols()-1)
				for c := range out {
					if !downstream.IsIntegerColumn(&d.Data.Columns[c]) {
						continue
					}
					b := featurize.ExtractFirstN(&d.Data.Columns[c], featurize.SampleCount)
					_, probs := ourRF.PredictBase(&b)
					best := 0.0
					for _, p := range probs {
						if p > best {
							best = p
						}
					}
					out[c] = best < 0.4 // low-confidence integers get both representations
				}
				return out
			}},
	}

	res := &Table15Result{
		Underperform: map[string]int{}, UnderBase: map[string]int{},
		OutperfBase: map[string]int{}, Best: map[string]int{},
	}
	for _, e := range entries {
		res.Tools = append(res.Tools, e.name)
	}
	seed := env.Cfg.Seed + 31
	for _, d := range suite {
		if d.IsRegression() {
			continue
		}
		res.Datasets++
		truth, err := downstream.Evaluate(d, d.TrueTypes, downstream.ForestModel, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: table15 truth: %w", err)
		}
		best := math.Inf(-1)
		accs := map[string]float64{}
		for _, e := range entries {
			types := e.types(d)
			// Single-representation baseline.
			base, err := downstream.Evaluate(d, types, downstream.ForestModel, seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: table15 base: %w", err)
			}
			dbl, err := downstream.EvaluateDouble(d, types, e.double(d, types), downstream.ForestModel, seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: table15 double: %w", err)
			}
			accs[e.name] = dbl.Acc
			if dbl.Acc > best {
				best = dbl.Acc
			}
			if dbl.Acc < truth.Acc-accTol {
				res.Underperform[e.name]++
			}
			if dbl.Acc < base.Acc-accTol {
				res.UnderBase[e.name]++
			}
			if dbl.Acc > base.Acc+accTol {
				res.OutperfBase[e.name]++
			}
		}
		for _, e := range entries {
			if accs[e.name] >= best-accTol {
				res.Best[e.name]++
			}
		}
	}
	return res, nil
}

// String renders the Table 15 summary.
func (r *Table15Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 15: double representation of integer columns (%d classification datasets, downstream Random Forest)\n\n", r.Datasets)
	t := &table{header: append([]string{""}, r.Tools...)}
	rows := []struct {
		label string
		src   map[string]int
	}{
		{"Underperform truth", r.Underperform},
		{"Underperform tool single-rep baseline", r.UnderBase},
		{"Outperform tool single-rep baseline", r.OutperfBase},
		{"Best performing tool for a dataset", r.Best},
	}
	for _, row := range rows {
		cells := []string{row.label}
		for _, tn := range r.Tools {
			cells = append(cells, fmt.Sprintf("%d", row.src[tn]))
		}
		t.addRow(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}
