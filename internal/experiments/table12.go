package experiments

import (
	"fmt"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/linear"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/ml/modelsel"
	"sortinghat/internal/ml/tree"
	"sortinghat/internal/stats"
)

// Table12Row is one ablation: a model trained with one of the three
// type-specific descriptive-statistic features removed.
type Table12Row struct {
	Model    string
	Dropped  string // "", "list", "url", "datetime"
	NineAcc  float64
	Datetime metrics.BinaryScores
	URL      metrics.BinaryScores
	List     metrics.BinaryScores
}

// Table12Result is the robustness ablation of the custom type-specific
// features (Appendix I.4 part B).
type Table12Result struct{ Rows []Table12Row }

// statFeatureIndex locates a named stats-vector dimension.
func statFeatureIndex(name string) int {
	for i, n := range stats.VectorNames() {
		if n == name {
			return i
		}
	}
	return -1
}

// Table12 drops the list-, URL- and datetime-specific boolean checks from
// X_stats one at a time and retrains Logistic Regression and Random Forest
// on [X_stats, X2_name, X2_sample1].
func Table12(env *Env) (*Table12Result, error) {
	fs := featurize.FeatureSet{UseStats: true, UseName: true, SampleCount: 1}
	X := fs.Matrix(env.Bases)
	drops := map[string][]int{
		"":         nil,
		"list":     {statFeatureIndex("sample_has_list"), statFeatureIndex("sample_has_delim_seq")},
		"url":      {statFeatureIndex("sample_has_url")},
		"datetime": {statFeatureIndex("sample_has_date")},
	}
	trainLabels := modelsel.GatherInts(env.Labels, env.TrainIdx)
	testLabels := env.TestLabels()

	res := &Table12Result{}
	for _, model := range []string{"Logistic Regression", "Random Forest"} {
		for _, dropped := range []string{"", "list", "url", "datetime"} {
			Xd := X
			if cols := drops[dropped]; len(cols) > 0 {
				Xd = zeroColumns(X, cols)
			}
			Xtr := modelsel.Gather(Xd, env.TrainIdx)
			Xte := modelsel.Gather(Xd, env.TestIdx)
			var pred []int
			switch model {
			case "Logistic Regression":
				sc := featurize.FitScaler(Xtr)
				Xtr = sc.Transform(cloneMatrix(Xtr))
				Xte = sc.Transform(cloneMatrix(Xte))
				m := linear.NewLogisticRegression()
				m.Seed = env.Cfg.Seed
				if err := m.Fit(Xtr, trainLabels, ftype.NumBaseClasses); err != nil {
					return nil, fmt.Errorf("experiments: table12: %w", err)
				}
				pred = m.Predict(Xte)
			default:
				m := tree.NewClassifier(env.Cfg.RFTrees, env.Cfg.RFDepth)
				m.Seed = env.Cfg.Seed
				if err := m.Fit(Xtr, trainLabels, ftype.NumBaseClasses); err != nil {
					return nil, fmt.Errorf("experiments: table12: %w", err)
				}
				pred = m.Predict(Xte)
			}
			cm := metrics.Confusion(testLabels, pred, ftype.NumBaseClasses)
			res.Rows = append(res.Rows, Table12Row{
				Model: model, Dropped: dropped,
				NineAcc:  cm.MultiAccuracy(),
				Datetime: cm.Binarized(ftype.Datetime.Index()),
				URL:      cm.Binarized(ftype.URL.Index()),
				List:     cm.Binarized(ftype.List.Index()),
			})
		}
	}
	return res, nil
}

// zeroColumns returns a copy of X with the given columns zeroed.
func zeroColumns(X [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := append([]float64(nil), row...)
		for _, c := range cols {
			if c >= 0 && c < len(r) {
				r[c] = 0
			}
		}
		out[i] = r
	}
	return out
}

func cloneMatrix(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// String renders the ablation table.
func (r *Table12Result) String() string {
	var b strings.Builder
	b.WriteString("Table 12: ablation of type-specific stats features on [X_stats, X2_name, X2_sample1]\n\n")
	t := &table{header: []string{"Model", "Dropped feature", "9-class acc",
		"DT P/R/F1", "URL P/R/F1", "List P/R/F1"}}
	for _, row := range r.Rows {
		dropped := row.Dropped
		if dropped == "" {
			dropped = "(none)"
		}
		prf := func(s metrics.BinaryScores) string {
			return fmt.Sprintf("%.3f/%.3f/%.3f", s.Precision, s.Recall, s.F1)
		}
		t.addRow(row.Model, dropped, f3(row.NineAcc), prf(row.Datetime), prf(row.URL), prf(row.List))
	}
	b.WriteString(t.String())
	return b.String()
}
