package experiments

import (
	"fmt"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/core"
	"sortinghat/internal/data"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/synth"
)

// Table11Row is the accuracy of the Random Forest retrained with a tenth
// class (Country or State) using N extra labeled examples.
type Table11Row struct {
	Type      ftype.FeatureType
	ExtraN    int
	TenClass  float64
	Precision float64
	Recall    float64
	F1        float64
	Binarized float64
}

// Table11Result is the vocabulary-extension study (Appendix I.4).
type Table11Result struct {
	Rows      []Table11Row
	NineClass float64 // reference 9-class accuracy with the same feature set
}

// Table11 extends the vocabulary with Country and State one at a time,
// with N=100 and N=200 extra training examples, retraining a Random Forest
// on the (X_stats, X2_sample1) feature set as in the paper.
func Table11(env *Env) (*Table11Result, error) {
	fs := featurize.FeatureSet{UseStats: true, SampleCount: 1}
	res := &Table11Result{}

	// Reference 9-class accuracy with this feature set.
	trainBases, trainLabels := env.TrainBases()
	ref, err := core.TrainOnBases(trainBases, trainLabels, core.Options{
		Model: core.RandomForest, FeatureSet: fs, Seed: env.Cfg.Seed,
		RFTrees: env.Cfg.RFTrees, RFDepth: env.Cfg.RFDepth})
	if err != nil {
		return nil, fmt.Errorf("experiments: table11: %w", err)
	}
	yTest := env.TestLabels()
	pred := make([]int, len(env.TestIdx))
	for i, j := range env.TestIdx {
		t, _ := ref.PredictBase(&env.Bases[j])
		pred[i] = t.Index()
	}
	res.NineClass = metrics.Accuracy(yTest, pred)

	for _, ext := range []ftype.FeatureType{ftype.Country, ftype.State} {
		for _, n := range []int{100, 200} {
			extTrain, extTest := synth.GenerateExtension(synth.ExtensionConfig{
				Type: ext, TrainN: n, TestN: 100, Seed: env.Cfg.Seed + int64(ext)*13 + int64(n),
			})
			row, err := runExtension(env, fs, ext, extTrain, extTest)
			if err != nil {
				return nil, err
			}
			row.ExtraN = n
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func runExtension(env *Env, fs featurize.FeatureSet, ext ftype.FeatureType,
	extTrain, extTest []data.LabeledColumn) (Table11Row, error) {

	extIdx := 9 // the tenth class index
	// Build training data: the base 9-class training split plus the extra
	// examples of the extension type.
	bases, labels := env.TrainBases()
	for i := range extTrain {
		b := featurize.ExtractFirstN(&extTrain[i].Column, featurize.SampleCount)
		bases = append(bases, b)
		labels = append(labels, extIdx)
	}
	pipe, err := core.TrainOnBases(bases, labels, core.Options{
		Model: core.RandomForest, FeatureSet: fs, Classes: 10,
		Seed: env.Cfg.Seed, RFTrees: env.Cfg.RFTrees, RFDepth: env.Cfg.RFDepth})
	if err != nil {
		return Table11Row{}, fmt.Errorf("experiments: table11: training with %s: %w", ext, err)
	}

	// Test set: the base held-out split plus 100 extension examples.
	truth := env.TestLabels()
	pred := make([]int, 0, len(truth)+len(extTest))
	for _, j := range env.TestIdx {
		t, _ := pipe.PredictBase(&env.Bases[j])
		pred = append(pred, t.Index())
	}
	for i := range extTest {
		b := featurize.ExtractFirstN(&extTest[i].Column, featurize.SampleCount)
		t, _ := pipe.PredictBase(&b)
		pred = append(pred, t.Index())
		truth = append(truth, extIdx)
	}
	cm := metrics.Confusion(truth, pred, 10)
	bs := cm.Binarized(extIdx)
	return Table11Row{
		Type: ext, TenClass: cm.MultiAccuracy(),
		Precision: bs.Precision, Recall: bs.Recall, F1: bs.F1, Binarized: bs.Accuracy,
	}, nil
}

// String renders the extension study.
func (r *Table11Result) String() string {
	var b strings.Builder
	b.WriteString("Table 11: extending the vocabulary with Country / State (Random Forest on X_stats, X2_sample1)\n")
	fmt.Fprintf(&b, "Reference 9-class accuracy with this feature set: %.3f\n\n", r.NineClass)
	t := &table{header: []string{"Type", "Extra N", "10-class acc", "Precision", "Recall", "F1", "Binarized acc"}}
	for _, row := range r.Rows {
		t.addRow(row.Type.String(), fmt.Sprintf("%d", row.ExtraN),
			f3(row.TenClass), f3(row.Precision), f3(row.Recall), f3(row.F1), f3(row.Binarized))
	}
	b.WriteString(t.String())
	return b.String()
}
