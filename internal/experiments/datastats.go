package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/ml/metrics"
)

// Table18Row is the per-class descriptive-statistic profile of the labeled
// corpus (the paper's Table 18 / Figure 10): moments of name length, value
// length, word counts, numeric means, distinct and NaN percentages.
type Table18Row struct {
	Class       ftype.FeatureType
	Count       int
	NameChars   summary
	ValueChars  summary
	ValueWords  summary
	MeanValue   summary
	PctDistinct summary
	PctNaNs     summary
}

type summary struct{ Avg, Median, Std, Max float64 }

func summarize(v []float64) summary {
	if len(v) == 0 {
		return summary{}
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	avg := sum / float64(len(s))
	var ss float64
	for _, x := range s {
		d := x - avg
		ss += d * d
	}
	return summary{
		Avg:    avg,
		Median: s[len(s)/2],
		Std:    math.Sqrt(ss / float64(len(s))),
		Max:    s[len(s)-1],
	}
}

// Table18Result holds the corpus profile, overall and per class, plus the
// Figure-10 empirical CDFs of %distinct and %NaN per class.
type Table18Result struct {
	Overall Table18Row
	ByClass []Table18Row

	CDFProbes   []float64 // probe points (percent values)
	DistinctCDF map[ftype.FeatureType][]float64
	NaNCDF      map[ftype.FeatureType][]float64
}

// Table18 profiles the labeled corpus per class.
func Table18(env *Env) *Table18Result {
	type acc struct {
		nameChars, valueChars, valueWords, meanVal, pctDistinct, pctNaNs []float64
	}
	accs := map[ftype.FeatureType]*acc{}
	overall := &acc{}
	for _, t := range ftype.BaseClasses() {
		accs[t] = &acc{}
	}
	for i := range env.Bases {
		b := &env.Bases[i]
		label := env.Corpus[i].Label
		for _, a := range []*acc{accs[label], overall} {
			a.nameChars = append(a.nameChars, float64(len(b.Name)))
			a.valueChars = append(a.valueChars, b.Stats.MeanCharCount)
			a.valueWords = append(a.valueWords, b.Stats.MeanWordCount)
			a.meanVal = append(a.meanVal, b.Stats.MeanVal)
			a.pctDistinct = append(a.pctDistinct, b.Stats.PctUnique)
			a.pctNaNs = append(a.pctNaNs, b.Stats.PctNaNs)
		}
	}
	row := func(class ftype.FeatureType, a *acc) Table18Row {
		return Table18Row{
			Class:       class,
			Count:       len(a.nameChars),
			NameChars:   summarize(a.nameChars),
			ValueChars:  summarize(a.valueChars),
			ValueWords:  summarize(a.valueWords),
			MeanValue:   summarize(a.meanVal),
			PctDistinct: summarize(a.pctDistinct),
			PctNaNs:     summarize(a.pctNaNs),
		}
	}
	res := &Table18Result{Overall: row(ftype.Unknown, overall)}
	for _, t := range ftype.BaseClasses() {
		res.ByClass = append(res.ByClass, row(t, accs[t]))
	}
	res.CDFProbes = []float64{0.1, 1, 5, 25, 50, 75, 95, 100}
	res.DistinctCDF = map[ftype.FeatureType][]float64{}
	res.NaNCDF = map[ftype.FeatureType][]float64{}
	for _, t := range ftype.BaseClasses() {
		res.DistinctCDF[t] = metrics.CDF(accs[t].pctDistinct, res.CDFProbes)
		res.NaNCDF[t] = metrics.CDF(accs[t].pctNaNs, res.CDFProbes)
	}
	return res
}

// String renders the Table 18 profile.
func (r *Table18Result) String() string {
	var b strings.Builder
	b.WriteString("Table 18 / Figure 10: descriptive-statistic profile of the labeled corpus\n")
	b.WriteString("(avg / median values per class)\n\n")
	t := &table{header: []string{"Class", "N", "Name chars", "Value chars", "Value words", "%Distinct", "%NaNs"}}
	addRow := func(label string, row Table18Row) {
		t.addRow(label, fmt.Sprintf("%d", row.Count),
			fmt.Sprintf("%.1f/%.0f", row.NameChars.Avg, row.NameChars.Median),
			fmt.Sprintf("%.1f/%.0f", row.ValueChars.Avg, row.ValueChars.Median),
			fmt.Sprintf("%.1f/%.0f", row.ValueWords.Avg, row.ValueWords.Median),
			fmt.Sprintf("%.1f/%.1f", row.PctDistinct.Avg, row.PctDistinct.Median),
			fmt.Sprintf("%.1f/%.1f", row.PctNaNs.Avg, row.PctNaNs.Median))
	}
	addRow("Overall", r.Overall)
	for _, row := range r.ByClass {
		addRow(row.Class.String(), row)
	}
	b.WriteString(t.String())

	if len(r.CDFProbes) > 0 {
		b.WriteString("\nFigure 10: CDF of %distinct values per class, P(X <= p)\n\n")
		header := []string{"Class"}
		for _, p := range r.CDFProbes {
			header = append(header, fmt.Sprintf("<=%g%%", p))
		}
		tc := &table{header: header}
		for _, row := range r.ByClass {
			cells := []string{row.Class.String()}
			for _, v := range r.DistinctCDF[row.Class] {
				cells = append(cells, fmt.Sprintf("%.2f", v))
			}
			tc.addRow(cells...)
		}
		b.WriteString(tc.String())
		b.WriteString("\nFigure 10: CDF of %NaNs per class, P(X <= p)\n\n")
		tn := &table{header: header}
		for _, row := range r.ByClass {
			cells := []string{row.Class.String()}
			for _, v := range r.NaNCDF[row.Class] {
				cells = append(cells, fmt.Sprintf("%.2f", v))
			}
			tn.addRow(cells...)
		}
		b.WriteString(tn.String())
	}
	return b.String()
}
