package experiments

import (
	"fmt"
	"math"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/core"
	"sortinghat/internal/downstream"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/synth"
	"sortinghat/internal/tools"
)

// downstreamTools are the approaches compared in Section 5 (Tables 4/5):
// Pandas, TFDV, AutoGluon, and the paper's OurRF.
var downstreamToolNames = []string{"Pandas", "TFDV", "AutoGluon", "OurRF"}

// DatasetRow is one row of Table 5: truth performance plus per-tool deltas,
// for both downstream models.
type DatasetRow struct {
	Name       string
	Regression bool
	Classes    int
	NumCols    int

	TruthLinear float64 // accuracy (classification) or RMSE (regression)
	TruthForest float64
	// Deltas vs truth, keyed by tool name. Classification: accuracy points
	// (negative = worse). Regression: RMSE increase (positive = worse).
	DeltaLinear map[string]float64
	DeltaForest map[string]float64
}

// CoverageRow is Table 4(A): column coverage and accuracy given coverage.
type CoverageRow struct {
	Tool     string
	Covered  int
	Total    int
	Accuracy float64 // type accuracy over covered columns
}

// SummaryCounts is Table 4(B): dataset counts per tool and downstream
// model family.
type SummaryCounts struct {
	Underperform map[string]int
	Match        map[string]int
	Outperform   map[string]int
	Best         map[string]int
}

// DownstreamResult aggregates Tables 4, 5 and the Figure-8 CDF data.
type DownstreamResult struct {
	Rows     []DatasetRow
	Coverage []CoverageRow
	Linear   SummaryCounts
	Forest   SummaryCounts

	// Figure 8 raw data: deltas vs truth over all classification models
	// and normalized RMSE increases over regression models.
	ClsDrops map[string][]float64
	RegRises map[string][]float64
}

func newSummary() SummaryCounts {
	return SummaryCounts{
		Underperform: map[string]int{}, Match: map[string]int{},
		Outperform: map[string]int{}, Best: map[string]int{},
	}
}

// matchTolerance defines "matching the truth": within half an accuracy
// point, or within 2% relative RMSE.
const accTol = 0.5

func regTol(truth float64) float64 { return 0.02 * math.Max(math.Abs(truth), 1e-9) }

// suiteFor generates the downstream suite, reduced to a representative
// subset (covering every routing path and both task types) in Quick mode.
func suiteFor(env *Env) []*synth.Downstream {
	specs := synth.SuiteSpecs(env.Cfg.Seed + 1000)
	if env.Cfg.Quick {
		keep := map[string]bool{"Cancer": true, "Hayes": true, "Boxing": true,
			"Auto-MPG": true, "IOT": true, "Zoo": true, "BBC": true,
			"MBA": true, "Accident": true}
		var subset []synth.DatasetSpec
		for _, sp := range specs {
			if keep[sp.Name] {
				sp.Rows /= 2
				subset = append(subset, sp)
			}
		}
		specs = subset
	}
	out := make([]*synth.Downstream, len(specs))
	for i, sp := range specs {
		out[i] = synth.Generate(sp)
	}
	return out
}

// TrainOurRF trains the paper's best pipeline on the environment's training
// split (shared by the downstream experiments).
func TrainOurRF(env *Env) (*core.Pipeline, error) {
	trainBases, trainLabels := env.TrainBases()
	return core.TrainOnBases(trainBases, trainLabels, core.Options{
		Model: core.RandomForest, FeatureSet: featurize.DefaultFeatureSet(),
		Seed: env.Cfg.Seed, RFTrees: env.Cfg.RFTrees, RFDepth: env.Cfg.RFDepth,
	})
}

// DownstreamSuite runs the full Section-5 study: generate the 30 datasets,
// infer types with every tool, train both downstream models under each
// typing, and score against the truth typing.
func DownstreamSuite(env *Env) (*DownstreamResult, error) {
	ourRF, err := TrainOurRF(env)
	if err != nil {
		return nil, fmt.Errorf("experiments: downstream: %w", err)
	}
	suite := suiteFor(env)

	inferrers := map[string]downstream.TypeInferrer{
		"Pandas":    tools.Pandas{},
		"TFDV":      tools.TFDV{},
		"AutoGluon": tools.AutoGluon{},
		"OurRF":     ourRF,
	}

	res := &DownstreamResult{
		Linear: newSummary(), Forest: newSummary(),
		ClsDrops: map[string][]float64{}, RegRises: map[string][]float64{},
	}
	coverage := map[string]*CoverageRow{}
	for _, tn := range downstreamToolNames {
		coverage[tn] = &CoverageRow{Tool: tn}
	}

	for _, d := range suite {
		row := DatasetRow{
			Name: d.Spec.Name, Regression: d.IsRegression(),
			Classes: d.Spec.Classes, NumCols: len(d.Spec.Cols),
			DeltaLinear: map[string]float64{}, DeltaForest: map[string]float64{},
		}
		seed := env.Cfg.Seed + 31

		evalBoth := func(types []ftype.FeatureType) (lin, for_ float64, err error) {
			le, err := downstream.Evaluate(d, types, downstream.LinearModel, seed)
			if err != nil {
				return 0, 0, err
			}
			fe, err := downstream.Evaluate(d, types, downstream.ForestModel, seed)
			if err != nil {
				return 0, 0, err
			}
			if d.IsRegression() {
				return le.RMSE, fe.RMSE, nil
			}
			return le.Acc, fe.Acc, nil
		}

		truthLin, truthFor, err := evalBoth(d.TrueTypes)
		if err != nil {
			return nil, fmt.Errorf("experiments: downstream truth: %w", err)
		}
		row.TruthLinear, row.TruthForest = truthLin, truthFor

		type toolScore struct{ lin, forest float64 }
		scores := map[string]toolScore{}
		for _, tn := range downstreamToolNames {
			inf := inferrers[tn]
			types := downstream.InferTypes(d, inf)

			// Table 4(A) coverage accounting.
			cov := tools.CoverageSet(tn)
			cr := coverage[tn]
			for c, pt := range types {
				cr.Total++
				if pt != ftype.Unknown && cov[pt] {
					cr.Covered++
					if pt == d.TrueTypes[c] {
						cr.Accuracy++ // counts; normalized later
					}
				}
			}

			lin, forest, err := evalBoth(types)
			if err != nil {
				return nil, fmt.Errorf("experiments: downstream %s/%s: %w", d.Spec.Name, tn, err)
			}
			scores[tn] = toolScore{lin, forest}
			if d.IsRegression() {
				row.DeltaLinear[tn] = lin - truthLin
				row.DeltaForest[tn] = forest - truthFor
				res.RegRises[tn] = append(res.RegRises[tn],
					100*(lin-truthLin)/math.Max(math.Abs(truthLin), 1e-9),
					100*(forest-truthFor)/math.Max(math.Abs(truthFor), 1e-9))
			} else {
				row.DeltaLinear[tn] = lin - truthLin
				row.DeltaForest[tn] = forest - truthFor
				res.ClsDrops[tn] = append(res.ClsDrops[tn], truthLin-lin, truthFor-forest)
			}
		}

		// Table 4(B) summary counts.
		tally := func(sum *SummaryCounts, pickScore func(toolScore) float64, truth float64) {
			best := math.Inf(-1)
			if d.IsRegression() {
				best = math.Inf(1)
			}
			for _, tn := range downstreamToolNames {
				v := pickScore(scores[tn])
				if d.IsRegression() {
					switch {
					case v > truth+regTol(truth):
						sum.Underperform[tn]++
					case v < truth-regTol(truth):
						sum.Outperform[tn]++
					default:
						sum.Match[tn]++
					}
					if v < best {
						best = v
					}
				} else {
					switch {
					case v < truth-accTol:
						sum.Underperform[tn]++
					case v > truth+accTol:
						sum.Outperform[tn]++
					default:
						sum.Match[tn]++
					}
					if v > best {
						best = v
					}
				}
			}
			for _, tn := range downstreamToolNames {
				v := pickScore(scores[tn])
				if d.IsRegression() {
					if v <= best+regTol(best) {
						sum.Best[tn]++
					}
				} else if v >= best-accTol {
					sum.Best[tn]++
				}
			}
		}
		tally(&res.Linear, func(s toolScore) float64 { return s.lin }, truthLin)
		tally(&res.Forest, func(s toolScore) float64 { return s.forest }, truthFor)

		res.Rows = append(res.Rows, row)
	}

	for _, tn := range downstreamToolNames {
		cr := coverage[tn]
		if cr.Covered > 0 {
			cr.Accuracy = cr.Accuracy / float64(cr.Covered)
		}
		res.Coverage = append(res.Coverage, *cr)
	}
	return res, nil
}

// String renders Tables 4(A), 4(B), 5 and the Figure-8 summary statistics.
func (r *DownstreamResult) String() string {
	var b strings.Builder
	b.WriteString("Table 4(A): type inference on the 30 downstream datasets\n\n")
	t := &table{header: []string{"Tool", "Column coverage", "Type accuracy given coverage"}}
	for _, c := range r.Coverage {
		t.addRow(c.Tool, fmt.Sprintf("%d/%d", c.Covered, c.Total), pct(c.Accuracy))
	}
	b.WriteString(t.String())

	b.WriteString("\nTable 4(B): datasets where tools underperform / match / outperform truth\n\n")
	for _, ms := range []struct {
		name string
		sum  SummaryCounts
	}{{"Logistic/Linear Regression", r.Linear}, {"Random Forest", r.Forest}} {
		fmt.Fprintf(&b, "-- downstream %s --\n", ms.name)
		t := &table{header: append([]string{""}, downstreamToolNames...)}
		for _, rowName := range []string{"Underperform truth", "Match truth", "Outperform truth", "Best tool for a dataset"} {
			row := []string{rowName}
			for _, tn := range downstreamToolNames {
				var v int
				switch rowName {
				case "Underperform truth":
					v = ms.sum.Underperform[tn]
				case "Match truth":
					v = ms.sum.Match[tn]
				case "Outperform truth":
					v = ms.sum.Outperform[tn]
				default:
					v = ms.sum.Best[tn]
				}
				row = append(row, fmt.Sprintf("%d", v))
			}
			t.addRow(row...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}

	b.WriteString("Table 5: downstream performance relative to true feature types\n")
	b.WriteString("(classification: accuracy x100, deltas in points; regression: RMSE, deltas absolute)\n\n")
	header := []string{"Dataset", "|A|", "|Y|", "Model", "Truth"}
	header = append(header, downstreamToolNames...)
	t5 := &table{header: header}
	for _, row := range r.Rows {
		task := fmt.Sprintf("%d", row.Classes)
		if row.Regression {
			task = "reg"
		}
		for _, m := range []string{"Linear", "RF"} {
			truth := row.TruthLinear
			deltas := row.DeltaLinear
			if m == "RF" {
				truth = row.TruthForest
				deltas = row.DeltaForest
			}
			cells := []string{row.Name, fmt.Sprintf("%d", row.NumCols), task, m, fmt.Sprintf("%.2f", truth)}
			for _, tn := range downstreamToolNames {
				cells = append(cells, fmt.Sprintf("%+.2f", deltas[tn]))
			}
			t5.addRow(cells...)
		}
	}
	b.WriteString(t5.String())

	b.WriteString("\nFigure 8: distribution of downstream drops vs truth (classification models)\n\n")
	tf := &table{header: []string{"Tool", "median drop", "75th pct drop", "max drop"}}
	for _, tn := range downstreamToolNames {
		drops := r.ClsDrops[tn]
		tf.addRow(tn,
			fmt.Sprintf("%.2f", metrics.Percentile(drops, 50)),
			fmt.Sprintf("%.2f", metrics.Percentile(drops, 75)),
			fmt.Sprintf("%.2f", metrics.Percentile(drops, 100)))
	}
	b.WriteString(tf.String())
	b.WriteString("\nFigure 8 (regression): normalized RMSE increase vs truth (%)\n\n")
	tr := &table{header: []string{"Tool", "median rise", "75th pct rise", "max rise"}}
	for _, tn := range downstreamToolNames {
		rises := r.RegRises[tn]
		tr.addRow(tn,
			fmt.Sprintf("%.1f", metrics.Percentile(rises, 50)),
			fmt.Sprintf("%.1f", metrics.Percentile(rises, 75)),
			fmt.Sprintf("%.1f", metrics.Percentile(rises, 100)))
	}
	b.WriteString(tr.String())
	return b.String()
}
