package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/core"
	"sortinghat/internal/featurize"
)

// Table3Error is one misclassified test example, in the shape of the
// paper's Table 3: attribute name, a sample value, column size, distinct
// and NaN percentages, the true label and the model's prediction.
type Table3Error struct {
	Name        string
	SampleValue string
	TotalValues int
	PctDistinct float64
	PctNaNs     float64
	Label       ftype.FeatureType
	Prediction  ftype.FeatureType
}

// Table3Result is the Random Forest error analysis: representative errors
// grouped by (label, prediction) pair plus pair frequencies.
type Table3Result struct {
	Examples   []Table3Error
	PairCounts map[[2]ftype.FeatureType]int
	TestErrors int
	TestTotal  int
}

// Table3 trains the best Random Forest and collects its held-out errors,
// keeping one representative example per (label, prediction) pair.
func Table3(env *Env) (*Table3Result, error) {
	opts := core.Options{Model: core.RandomForest, FeatureSet: featurize.DefaultFeatureSet(),
		Seed: env.Cfg.Seed, RFTrees: env.Cfg.RFTrees, RFDepth: env.Cfg.RFDepth}
	trainBases, trainLabels := env.TrainBases()
	pipe, err := core.TrainOnBases(trainBases, trainLabels, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: table3: %w", err)
	}
	res := &Table3Result{PairCounts: map[[2]ftype.FeatureType]int{}}
	seen := map[[2]ftype.FeatureType]bool{}
	for _, j := range env.TestIdx {
		pred, _ := pipe.PredictBase(&env.Bases[j])
		truth := env.Corpus[j].Label
		res.TestTotal++
		if pred == truth {
			continue
		}
		res.TestErrors++
		pair := [2]ftype.FeatureType{truth, pred}
		res.PairCounts[pair]++
		if seen[pair] {
			continue
		}
		seen[pair] = true
		b := &env.Bases[j]
		res.Examples = append(res.Examples, Table3Error{
			Name:        b.Name,
			SampleValue: b.Sample(0),
			TotalValues: b.Stats.TotalVals,
			PctDistinct: b.Stats.PctUnique,
			PctNaNs:     b.Stats.PctNaNs,
			Label:       truth,
			Prediction:  pred,
		})
	}
	sort.Slice(res.Examples, func(i, k int) bool {
		a, b := res.Examples[i], res.Examples[k]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Prediction < b.Prediction
	})
	return res, nil
}

// String renders the representative error table and pair frequencies.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: examples of errors made by Random Forest (%d errors / %d test examples)\n\n",
		r.TestErrors, r.TestTotal)
	t := &table{header: []string{"Attribute Name", "Sample Value", "Total Values", "%Distinct", "%NaNs", "Label", "RF Prediction"}}
	for _, e := range r.Examples {
		sample := e.SampleValue
		if len(sample) > 28 {
			sample = sample[:25] + "..."
		}
		t.addRow(e.Name, sample, fmt.Sprintf("%d", e.TotalValues),
			fmt.Sprintf("%.2f", e.PctDistinct), fmt.Sprintf("%.1f", e.PctNaNs),
			e.Label.Short(), e.Prediction.Short())
	}
	b.WriteString(t.String())

	b.WriteString("\nError pair frequencies (label -> prediction):\n")
	type pc struct {
		pair  [2]ftype.FeatureType
		count int
	}
	pairs := make([]pc, 0, len(r.PairCounts))
	for p, c := range r.PairCounts {
		pairs = append(pairs, pc{p, c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		// Count descending, then pair ascending: ties must not fall back
		// to map iteration order or the report loses byte-stability.
		if pairs[i].count != pairs[j].count {
			return pairs[i].count > pairs[j].count
		}
		if pairs[i].pair[0] != pairs[j].pair[0] {
			return pairs[i].pair[0] < pairs[j].pair[0]
		}
		return pairs[i].pair[1] < pairs[j].pair[1]
	})
	for _, p := range pairs {
		fmt.Fprintf(&b, "  %-18s -> %-18s %d\n", p.pair[0], p.pair[1], p.count)
	}
	return b.String()
}
