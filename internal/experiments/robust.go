package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"sortinghat/internal/core"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/metrics"
)

// Figure9Result is the Monte-Carlo robustness study (Figure 9 / Table 16):
// for every held-out test column, the prediction is recomputed under many
// random re-samplings of the five sample values, and we record the
// percentage of runs whose prediction matches the unperturbed one.
type Figure9Result struct {
	Runs        int
	Percentiles []float64 // probe percentiles
	LogReg      []float64 // % unchanged at each percentile (over columns)
	Forest      []float64
}

// Figure9 runs the perturbation study for Logistic Regression and Random
// Forest on the (X_stats, X2_name, X2_sample1) feature set, as in the
// paper.
func Figure9(env *Env, runs int) (*Figure9Result, error) {
	if runs <= 0 {
		runs = 100
	}
	nCols := len(env.TestIdx)
	if env.Cfg.Quick && nCols > 250 {
		nCols = 250
	}
	testIdx := env.TestIdx[:nCols]

	fs := featurize.FeatureSet{UseStats: true, UseName: true, SampleCount: 1}
	trainBases, trainLabels := env.TrainBases()
	lr, err := core.TrainOnBases(trainBases, trainLabels,
		core.Options{Model: core.LogReg, FeatureSet: fs, Seed: env.Cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure9: %w", err)
	}
	rf, err := core.TrainOnBases(trainBases, trainLabels,
		core.Options{Model: core.RandomForest, FeatureSet: fs, Seed: env.Cfg.Seed,
			RFTrees: env.Cfg.RFTrees, RFDepth: env.Cfg.RFDepth})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure9: %w", err)
	}

	stableLR := make([]float64, 0, nCols)
	stableRF := make([]float64, 0, nCols)
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 77))
	for _, j := range testIdx {
		col := &env.Corpus[j].Column
		base := featurize.ExtractFirstN(col, featurize.SampleCount)
		refLR, _ := lr.PredictBase(&base)
		refRF, _ := rf.PredictBase(&base)
		sameLR, sameRF := 0, 0
		for r := 0; r < runs; r++ {
			perturbed := featurize.Extract(col, rng)
			if p, _ := lr.PredictBase(&perturbed); p == refLR {
				sameLR++
			}
			if p, _ := rf.PredictBase(&perturbed); p == refRF {
				sameRF++
			}
		}
		stableLR = append(stableLR, 100*float64(sameLR)/float64(runs))
		stableRF = append(stableRF, 100*float64(sameRF)/float64(runs))
	}

	res := &Figure9Result{Runs: runs,
		Percentiles: []float64{50, 20, 10, 5, 1, 0.1, 0.01}}
	for _, p := range res.Percentiles {
		res.LogReg = append(res.LogReg, metrics.Percentile(stableLR, p))
		res.Forest = append(res.Forest, metrics.Percentile(stableRF, p))
	}
	return res, nil
}

// String renders the Table 16 percentile view of the stability CDF.
func (r *Figure9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 / Table 16: robustness to value re-sampling (%d Monte-Carlo runs per column)\n", r.Runs)
	b.WriteString("Percentage of runs whose prediction is unchanged, by percentile over test columns:\n\n")
	t := &table{header: []string{"nth percentile", "Logistic Regression", "Random Forest"}}
	for i, p := range r.Percentiles {
		t.addRow(fmt.Sprintf("%g", p),
			fmt.Sprintf("%.0f", r.LogReg[i]),
			fmt.Sprintf("%.0f", r.Forest[i]))
	}
	b.WriteString(t.String())
	return b.String()
}
