package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"sortinghat/internal/core"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/ml/modelsel"
)

// FeatureSets2 are the nine feature-set columns of Table 2, in paper order.
func FeatureSets2() []featurize.FeatureSet {
	fs := func(stats, name bool, samples int) featurize.FeatureSet {
		return featurize.FeatureSet{UseStats: stats, UseName: name, SampleCount: samples}
	}
	return []featurize.FeatureSet{
		fs(true, false, 0),  // X_stats
		fs(false, true, 0),  // X*_name
		fs(false, false, 1), // X*_sample1
		fs(true, true, 0),   // X_stats, X*_name
		fs(true, false, 1),  // X_stats, X*_sample1
		fs(false, true, 1),  // X*_name, X*_sample1
		fs(false, false, 2), // X*_sample1, X*_sample2
		fs(true, true, 1),   // X_stats, X*_name, X*_sample1
		fs(true, true, 2),   // X_stats, X*_name, X*_sample1, X*_sample2
	}
}

// Table2Cell holds train/validation/test accuracy for one model and
// feature set (Table 9 reports all three; Table 2 is the Test column).
type Table2Cell struct {
	Train, Val, Test float64
	Skipped          bool // cell not applicable (paper leaves it blank)
}

// Table2Result is the model × feature-set accuracy grid.
type Table2Result struct {
	Models []string
	Sets   []featurize.FeatureSet
	Cells  map[string][]Table2Cell // model -> per-set cells
}

// knnApplicable mirrors the paper: k-NN runs only on X_stats, X*_name and
// their combination (the task distance has no sample-value component).
func knnApplicable(fs featurize.FeatureSet) bool {
	return fs.SampleCount == 0 && (fs.UseStats || fs.UseName)
}

// Table2 runs the feature-set ablation of Table 2 / Table 9: five model
// families across nine feature sets. Models are tuned/fitted on 75% of the
// training split with the remaining 25% as the validation fold (a
// single-fold stand-in for the paper's 5-fold nested CV; see DESIGN.md).
func Table2(env *Env) (*Table2Result, error) {
	res := &Table2Result{
		Models: []string{"Logistic Regression", "RBF-SVM", "Random Forest", "CNN", "k-NN"},
		Sets:   FeatureSets2(),
		Cells:  map[string][]Table2Cell{},
	}
	// Split the training data into subtrain/val once, shared by all cells.
	trainLabels := modelsel.GatherInts(env.Labels, env.TrainIdx)
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 5))
	subIdx, valIdx := modelsel.StratifiedSplit(trainLabels, 0.25, rng)
	sub := gather(env.TrainIdx, subIdx) // corpus indices
	val := gather(env.TrainIdx, valIdx)

	subBases := gather(env.Bases, sub)
	subLabels := modelsel.GatherInts(env.Labels, sub)
	valLabels := modelsel.GatherInts(env.Labels, val)
	testLabels := env.TestLabels()

	evalPipe := func(p *core.Pipeline, idx []int, y []int) float64 {
		pred := make([]int, len(idx))
		for i, j := range idx {
			t, _ := p.PredictBase(&env.Bases[j])
			pred[i] = t.Index()
		}
		return metrics.Accuracy(y, pred)
	}

	for _, modelName := range res.Models {
		cells := make([]Table2Cell, len(res.Sets))
		for si, fs := range res.Sets {
			var opts core.Options
			opts.FeatureSet = fs
			opts.Seed = env.Cfg.Seed
			switch modelName {
			case "Logistic Regression":
				opts.Model = core.LogReg
			case "RBF-SVM":
				opts.Model = core.RBFSVM
			case "Random Forest":
				opts.Model = core.RandomForest
				opts.RFTrees = env.Cfg.RFTrees
				opts.RFDepth = env.Cfg.RFDepth
			case "CNN":
				opts.Model = core.CNN
				opts.CNNEpochs = env.Cfg.CNNEpochs
			case "k-NN":
				opts.Model = core.KNN
				if !knnApplicable(fs) {
					cells[si] = Table2Cell{Skipped: true}
					continue
				}
			}
			pipe, err := core.TrainOnBases(subBases, subLabels, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: table2: %s / %s: %w", modelName, fs.Label(), err)
			}
			cells[si] = Table2Cell{
				Train: evalPipe(pipe, sub, subLabels),
				Val:   evalPipe(pipe, val, valLabels),
				Test:  evalPipe(pipe, env.TestIdx, testLabels),
			}
		}
		res.Cells[modelName] = cells
	}
	return res, nil
}

// String renders the Table 2 grid (test accuracy) followed by the Table 9
// train/validation/test breakdown.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: full 9-class test accuracy by model and feature set\n\n")
	header := []string{"Model"}
	for _, fs := range r.Sets {
		header = append(header, fs.Label())
	}
	t := &table{header: header}
	for _, m := range r.Models {
		row := []string{m}
		for _, c := range r.Cells[m] {
			if c.Skipped {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.4f", c.Test))
			}
		}
		t.addRow(row...)
	}
	b.WriteString(t.String())

	b.WriteString("\nTable 9: train / validation / test accuracy by model and feature set\n\n")
	t9 := &table{header: header}
	for _, m := range r.Models {
		row := []string{m}
		for _, c := range r.Cells[m] {
			if c.Skipped {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.3f/%.3f/%.3f", c.Train, c.Val, c.Test))
			}
		}
		t9.addRow(row...)
	}
	b.WriteString(t9.String())
	return b.String()
}
