package experiments

import (
	"testing"

	"sortinghat/ftype"
	"sortinghat/internal/ml/metrics"
)

// Report writers must be byte-stable: results_all.txt is diffed across
// runs to confirm reproducibility, so a renderer that leaks map iteration
// order (or breaks sort ties by it) would make identical experiments look
// different. Rendering the same result repeatedly in one process gives
// Go's per-range map order randomization a chance to expose any leak.

const renderTrials = 20

func assertStableRender(t *testing.T, name string, render func() string) {
	t.Helper()
	first := render()
	for i := 1; i < renderTrials; i++ {
		if got := render(); got != first {
			t.Fatalf("%s: render %d differs from render 0\n--- first ---\n%s\n--- got ---\n%s",
				name, i, first, got)
		}
	}
}

func TestTable3StringByteStable(t *testing.T) {
	// Deliberately tie the counts: the regression this guards is a
	// count-only sort comparator whose ties fell back to map order.
	res := &Table3Result{
		TestErrors: 9,
		TestTotal:  100,
		PairCounts: map[[2]ftype.FeatureType]int{
			{ftype.Numeric, ftype.Categorical}:     2,
			{ftype.Categorical, ftype.Numeric}:     2,
			{ftype.Datetime, ftype.Sentence}:       2,
			{ftype.Sentence, ftype.Datetime}:       1,
			{ftype.URL, ftype.Sentence}:            1,
			{ftype.List, ftype.Categorical}:        1,
			{ftype.EmbeddedNumber, ftype.Numeric}:  0,
			{ftype.ContextSpecific, ftype.Numeric}: 0,
		},
		Examples: []Table3Error{
			{Name: "zip", SampleValue: "92093", TotalValues: 100,
				PctDistinct: 8, PctNaNs: 0, Label: ftype.Categorical, Prediction: ftype.Numeric},
		},
	}
	assertStableRender(t, "Table3Result", res.String)
}

func TestTable1StringByteStable(t *testing.T) {
	y := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 0, 1, 2}
	predA := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 1, 1, 0}
	predB := []int{0, 0, 2, 2, 4, 4, 6, 6, 8, 8, 1, 2}
	res := &Table1Result{
		Approaches: []string{"Rule-based", "Rand Forest"},
		Confusions: map[string]*metrics.ConfusionMatrix{
			"Rule-based":  metrics.Confusion(y, predA, ftype.NumBaseClasses),
			"Rand Forest": metrics.Confusion(y, predB, ftype.NumBaseClasses),
		},
		NineClass: map[string]float64{
			"Rule-based":  0.75,
			"Rand Forest": 0.75, // tied on purpose
		},
	}
	assertStableRender(t, "Table1Result", res.String)
}
