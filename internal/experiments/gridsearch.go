package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/featurize"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/ml/modelsel"
	"sortinghat/internal/ml/tree"
	"sortinghat/internal/stats"
)

// GridResult is the Appendix-B hyper-parameter study for the Random
// Forest: validation accuracy over the paper's NumEstimator × MaxDepth
// grid, plus the top feature importances of the best model (backing the
// Section 6.2 takeaway that descriptive stats and attribute names carry
// most of the signal).
type GridResult struct {
	Points []GridCell
	Best   GridCell

	// Top feature importances of the best forest, as (name, weight).
	TopFeatures []FeatureWeight
	// Aggregate importance by signal group.
	StatsShare, NameShare float64
}

// GridCell is one grid evaluation.
type GridCell struct {
	Trees, Depth int
	ValAccuracy  float64
}

// FeatureWeight names one feature importance.
type FeatureWeight struct {
	Name   string
	Weight float64
}

// paperRFGrid is Appendix B's Random Forest grid. In Quick mode a reduced
// grid keeps the sweep cheap.
func paperRFGrid(quick bool) (trees, depths []float64) {
	if quick {
		return []float64{5, 25, 75}, []float64{5, 25}
	}
	return []float64{5, 25, 50, 75, 100}, []float64{5, 10, 25, 50, 100}
}

// GridSearchRF sweeps the paper's Random Forest grid on a train/validation
// split of the training data and reports the winner and its feature
// importances.
func GridSearchRF(env *Env) (*GridResult, error) {
	fs := featurize.DefaultFeatureSet()
	trainLabels := modelsel.GatherInts(env.Labels, env.TrainIdx)
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 21))
	subIdx, valIdx := modelsel.StratifiedSplit(trainLabels, 0.25, rng)
	sub := gather(env.TrainIdx, subIdx)
	val := gather(env.TrainIdx, valIdx)

	X := fs.Matrix(env.Bases)
	Xsub := modelsel.Gather(X, sub)
	ysub := modelsel.GatherInts(env.Labels, sub)
	Xval := modelsel.Gather(X, val)
	yval := modelsel.GatherInts(env.Labels, val)

	treesGrid, depthGrid := paperRFGrid(env.Cfg.Quick)
	grid := modelsel.Grid(map[string][]float64{"trees": treesGrid, "depth": depthGrid})

	res := &GridResult{}
	var bestForest *tree.Forest
	for _, p := range grid {
		m := tree.NewClassifier(int(p["trees"]), int(p["depth"]))
		m.Seed = env.Cfg.Seed
		if err := m.Fit(Xsub, ysub, ftype.NumBaseClasses); err != nil {
			return nil, fmt.Errorf("experiments: grid search: %w", err)
		}
		acc := metrics.Accuracy(yval, m.Predict(Xval))
		cell := GridCell{Trees: int(p["trees"]), Depth: int(p["depth"]), ValAccuracy: acc}
		res.Points = append(res.Points, cell)
		if acc > res.Best.ValAccuracy {
			res.Best = cell
			bestForest = m
		}
	}

	// Feature importances, mapped back to signal names: the first
	// stats.VectorDim dimensions are the descriptive stats; the rest are
	// hashed attribute-name bigram buckets.
	imp := bestForest.FeatureImportances()
	names := stats.VectorNames()
	for i, w := range imp {
		var name string
		if i < len(names) {
			name = names[i]
			res.StatsShare += w
		} else {
			name = fmt.Sprintf("name_bigram[%d]", i-len(names))
			res.NameShare += w
		}
		res.TopFeatures = append(res.TopFeatures, FeatureWeight{name, w})
	}
	sort.Slice(res.TopFeatures, func(i, j int) bool {
		return res.TopFeatures[i].Weight > res.TopFeatures[j].Weight
	})
	if len(res.TopFeatures) > 12 {
		res.TopFeatures = res.TopFeatures[:12]
	}
	return res, nil
}

// String renders the grid and the importance summary.
func (r *GridResult) String() string {
	var b strings.Builder
	b.WriteString("Appendix B: Random Forest hyper-parameter grid (validation accuracy)\n\n")
	t := &table{header: []string{"NumEstimator", "MaxDepth", "Validation accuracy"}}
	for _, c := range r.Points {
		marker := ""
		if c == r.Best {
			marker = "  <- best"
		}
		t.addRow(fmt.Sprintf("%d", c.Trees), fmt.Sprintf("%d", c.Depth), f3(c.ValAccuracy)+marker)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nSignal share of the best forest (Section 6.2 takeaway): descriptive stats %.1f%%, attribute-name bigrams %.1f%%\n\n",
		100*r.StatsShare, 100*r.NameShare)
	b.WriteString("Top individual features:\n")
	for _, fw := range r.TopFeatures {
		fmt.Fprintf(&b, "  %-28s %.4f\n", fw.Name, fw.Weight)
	}
	return b.String()
}
