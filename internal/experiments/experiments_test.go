package experiments

import (
	"strings"
	"sync"
	"testing"

	"sortinghat/ftype"
)

// A tiny shared environment keeps the experiment smoke tests fast.
var (
	envOnce sync.Once
	tinyEnv *Env
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.CorpusN = 1000
		cfg.RFTrees = 15
		cfg.CNNEpochs = 1
		cfg.Quick = true
		tinyEnv = NewEnv(cfg)
	})
	return tinyEnv
}

func TestEnvSplitDisjoint(t *testing.T) {
	env := testEnv(t)
	if len(env.TrainIdx)+len(env.TestIdx) != len(env.Corpus) {
		t.Fatalf("split does not partition: %d+%d != %d",
			len(env.TrainIdx), len(env.TestIdx), len(env.Corpus))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, env.TrainIdx...), env.TestIdx...) {
		if seen[i] {
			t.Fatal("index in both splits")
		}
		seen[i] = true
	}
	frac := float64(len(env.TestIdx)) / float64(len(env.Corpus))
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("test fraction = %f, want ~0.2", frac)
	}
}

func TestTable1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := Table1(env)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(res.Approaches) != 9 {
		t.Fatalf("approaches = %d, want 9", len(res.Approaches))
	}
	// The paper's headline orderings.
	rf := res.NineClass["Rand Forest"]
	if rf < res.NineClass["TFDV"] || rf < res.NineClass["Sherlock"] || rf < res.NineClass["Rule-based"] {
		t.Errorf("Random Forest (%.3f) must beat the rule/syntax approaches", rf)
	}
	// Tools have perfect Numeric recall but poor precision.
	for _, tool := range []string{"TFDV", "Pandas", "AutoGluon"} {
		s := res.Confusions[tool].Binarized(ftype.Numeric.Index())
		if s.Recall < 0.99 {
			t.Errorf("%s Numeric recall = %.3f, want ~1.0", tool, s.Recall)
		}
		if s.Precision > 0.85 {
			t.Errorf("%s Numeric precision = %.3f, suspiciously high", tool, s.Precision)
		}
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Error("String() missing header")
	}
}

func TestTable3ErrorsConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := Table3(env)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if res.TestTotal != len(env.TestIdx) {
		t.Errorf("TestTotal = %d", res.TestTotal)
	}
	sum := 0
	for _, c := range res.PairCounts {
		sum += c
	}
	if sum != res.TestErrors {
		t.Errorf("pair counts sum %d != errors %d", sum, res.TestErrors)
	}
	for _, e := range res.Examples {
		if e.Label == e.Prediction {
			t.Error("error table contains a correct prediction")
		}
	}
	if !strings.Contains(res.String(), "Table 3") {
		t.Error("String() missing header")
	}
}

func TestTable18Profile(t *testing.T) {
	env := testEnv(t)
	res := Table18(env)
	if res.Overall.Count != len(env.Corpus) {
		t.Fatalf("overall count = %d", res.Overall.Count)
	}
	byClass := map[ftype.FeatureType]Table18Row{}
	total := 0
	for _, r := range res.ByClass {
		byClass[r.Class] = r
		total += r.Count
	}
	if total != len(env.Corpus) {
		t.Errorf("class counts sum to %d", total)
	}
	// Sentences and lists are long; numerics are short (Table 18 shape).
	if byClass[ftype.Sentence].ValueChars.Avg <= byClass[ftype.Numeric].ValueChars.Avg {
		t.Error("Sentence values should be longer than Numeric values")
	}
	if byClass[ftype.NotGeneralizable].PctNaNs.Avg <= byClass[ftype.URL].PctNaNs.Avg-20 {
		t.Error("NG should be NaN-heavy")
	}
	if !strings.Contains(res.String(), "Table 18") {
		t.Error("String() missing header")
	}
}

func TestFigure7RuntimeBuckets(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := Figure7(env)
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.TotalUs <= 0 {
			t.Errorf("%s total = %f", r.Model, r.TotalUs)
		}
		if r.TotalUs > 200000 { // paper: all models < 0.2s per column
			t.Errorf("%s takes %.0fµs per column", r.Model, r.TotalUs)
		}
	}
	if !strings.Contains(res.String(), "Figure 7") {
		t.Error("String() missing header")
	}
}

func TestFigure9Stability(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := Figure9(env, 8)
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	if res.Runs != 8 {
		t.Errorf("runs = %d", res.Runs)
	}
	// Median stability should be very high for both models.
	if res.LogReg[0] < 90 || res.Forest[0] < 90 {
		t.Errorf("median stability LR=%.0f RF=%.0f, want >= 90", res.LogReg[0], res.Forest[0])
	}
	// Percentile curves are non-increasing as percentile shrinks.
	for i := 1; i < len(res.Forest); i++ {
		if res.Forest[i] > res.Forest[i-1]+1e-9 {
			t.Error("forest stability percentiles should be non-increasing")
		}
	}
	if !strings.Contains(res.String(), "Table 16") {
		t.Error("String() missing header")
	}
}

func TestTable7GroupedSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := Table7(env)
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Test <= 0.3 || r.Test > 1 {
			t.Errorf("%s test accuracy = %.3f out of range", r.Model, r.Test)
		}
	}
	if !strings.Contains(res.String(), "Table 7") {
		t.Error("String() missing header")
	}
}

func TestTable12Ablation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := Table12(env)
	if err != nil {
		t.Fatalf("Table12: %v", err)
	}
	if len(res.Rows) != 8 { // 2 models × 4 configurations
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's takeaway: dropping one custom feature moves 9-class
	// accuracy only marginally.
	var base, dropped float64
	for _, r := range res.Rows {
		if r.Model == "Random Forest" {
			if r.Dropped == "" {
				base = r.NineAcc
			} else if r.Dropped == "datetime" {
				dropped = r.NineAcc
			}
		}
	}
	if base == 0 || dropped == 0 {
		t.Fatal("missing rows")
	}
	if base-dropped > 0.08 {
		t.Errorf("dropping the datetime check cost %.3f accuracy; featurization should be robust", base-dropped)
	}
}

func TestStatFeatureIndex(t *testing.T) {
	if statFeatureIndex("sample_has_url") < 0 {
		t.Error("sample_has_url not found")
	}
	if statFeatureIndex("nope") != -1 {
		t.Error("unknown feature should be -1")
	}
}

func TestDownstreamSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := DownstreamSuite(env)
	if err != nil {
		t.Fatalf("DownstreamSuite: %v", err)
	}
	if len(res.Rows) != 9 { // quick subset
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Coverage ordering: Pandas < OurRF (vocabulary coverage).
	cov := map[string]CoverageRow{}
	for _, c := range res.Coverage {
		cov[c.Tool] = c
	}
	if cov["Pandas"].Covered >= cov["OurRF"].Covered {
		t.Errorf("Pandas coverage %d should be below OurRF %d",
			cov["Pandas"].Covered, cov["OurRF"].Covered)
	}
	// OurRF should not underperform truth more often than the tools.
	for _, tn := range []string{"Pandas", "TFDV", "AutoGluon"} {
		if res.Linear.Underperform["OurRF"] > res.Linear.Underperform[tn] {
			t.Errorf("OurRF underperforms truth (%d) more than %s (%d)",
				res.Linear.Underperform["OurRF"], tn, res.Linear.Underperform[tn])
		}
	}
	if !strings.Contains(res.String(), "Table 4(A)") {
		t.Error("String() missing header")
	}
}

func TestTable15Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := Table15(env)
	if err != nil {
		t.Fatalf("Table15: %v", err)
	}
	if res.Datasets != 7 { // quick subset has 7 classification datasets
		t.Fatalf("datasets = %d", res.Datasets)
	}
	if len(res.Tools) != 4 || res.Tools[3] != "NewRF" {
		t.Fatalf("tools = %v", res.Tools)
	}
	if !strings.Contains(res.String(), "Table 15") {
		t.Error("String() missing header")
	}
}

func TestTable11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := Table11(env)
	if err != nil {
		t.Fatalf("Table11: %v", err)
	}
	if len(res.Rows) != 4 { // Country/State x N=100/200
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Recall < 0.3 {
			t.Errorf("%s N=%d recall = %.3f, extension should be learnable", r.Type, r.ExtraN, r.Recall)
		}
		if r.TenClass < res.NineClass-0.15 {
			t.Errorf("10-class accuracy %.3f collapsed relative to 9-class %.3f", r.TenClass, res.NineClass)
		}
	}
	if !strings.Contains(res.String(), "Table 11") {
		t.Error("String() missing header")
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("very slow")
	}
	env := testEnv(t)
	res, err := Table2(env)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(res.Sets) != 9 {
		t.Fatalf("sets = %d", len(res.Sets))
	}
	// k-NN runs only where applicable.
	knnCells := res.Cells["k-NN"]
	applicable := 0
	for _, c := range knnCells {
		if !c.Skipped {
			applicable++
		}
	}
	if applicable != 3 {
		t.Errorf("k-NN applicable cells = %d, want 3", applicable)
	}
	// Stats+name should beat name-only for the Random Forest.
	rf := res.Cells["Random Forest"]
	if rf[3].Test <= rf[1].Test-0.02 {
		t.Errorf("RF stats+name (%.3f) should be at least name-only (%.3f)", rf[3].Test, rf[1].Test)
	}
	if !strings.Contains(res.String(), "Table 2") || !strings.Contains(res.String(), "Table 9") {
		t.Error("String() missing headers")
	}
}

func TestGridSearchRF(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := GridSearchRF(env)
	if err != nil {
		t.Fatalf("GridSearchRF: %v", err)
	}
	if len(res.Points) != 6 { // quick grid 3x2
		t.Fatalf("grid points = %d", len(res.Points))
	}
	if res.Best.ValAccuracy <= 0.5 {
		t.Errorf("best val accuracy = %.3f", res.Best.ValAccuracy)
	}
	// The Section 6.2 takeaway: stats carry the majority of the signal.
	if res.StatsShare < res.NameShare {
		t.Errorf("stats share %.2f should exceed name share %.2f", res.StatsShare, res.NameShare)
	}
	if !strings.Contains(res.String(), "Appendix B") {
		t.Error("String() missing header")
	}
}

func TestTable14Complementarity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	env := testEnv(t)
	res, err := Table14(env)
	if err != nil {
		t.Fatalf("Table14: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SherlockGivenOurRF > r.SherlockCorrect {
			t.Errorf("%s: conditional correct (%d) cannot exceed unconditional (%d)",
				r.Type, r.SherlockGivenOurRF, r.SherlockCorrect)
		}
		if r.OurRFCategorical < r.TestExamples/2 {
			t.Errorf("%s: OurRF routed only %d/%d probes to Categorical",
				r.Type, r.OurRFCategorical, r.TestExamples)
		}
	}
	if !strings.Contains(res.String(), "Table 14") {
		t.Error("String() missing header")
	}
}

func TestTable18CDFs(t *testing.T) {
	env := testEnv(t)
	res := Table18(env)
	if len(res.CDFProbes) == 0 {
		t.Fatal("no CDF probes")
	}
	for _, cls := range ftype.BaseClasses() {
		cdf := res.DistinctCDF[cls]
		if len(cdf) != len(res.CDFProbes) {
			t.Fatalf("%v: cdf len %d", cls, len(cdf))
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				t.Errorf("%v: CDF not monotone", cls)
			}
		}
		if cdf[len(cdf)-1] < 0.999 {
			t.Errorf("%v: CDF does not reach 1 at 100%%", cls)
		}
	}
	// Shape: the NG class contains (nearly) all-NaN columns, so its CDF at
	// the 95% probe must sit below Categorical's (which has none).
	if res.NaNCDF[ftype.NotGeneralizable][6] >= res.NaNCDF[ftype.Categorical][6] {
		t.Error("NG should have a heavier extreme-NaN tail than Categorical")
	}
	if !strings.Contains(res.String(), "Figure 10") {
		t.Error("String() missing Figure 10 section")
	}
}
