package experiments

import (
	"fmt"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/data"
	"sortinghat/internal/synth"
	"sortinghat/internal/tools"
)

// Table14Row is one semantic type in the Sherlock-complementarity study.
type Table14Row struct {
	Type               string
	TestExamples       int
	SherlockCorrect    int // Sherlock run independently
	OurRFCategorical   int // columns OurRF routes to Categorical
	SherlockGivenOurRF int // Sherlock correct among OurRF's Categorical predictions
}

// Table14Result reproduces Appendix I.4 Part C: Sherlock's semantic type
// detection is complementary to ML feature type inference — running
// Sherlock on top of OurRF's Categorical predictions recovers the same
// semantic types as running it alone.
type Table14Result struct{ Rows []Table14Row }

// semanticProbe generates test columns of one unambiguous semantic type.
func semanticProbe(kind string, n int, seed int64) []data.Column {
	switch kind {
	case "Country":
		_, test := synth.GenerateExtension(synth.ExtensionConfig{
			Type: ftype.Country, TrainN: 0, TestN: n, Seed: seed})
		cols := make([]data.Column, len(test))
		for i := range test {
			cols[i] = test[i].Column
		}
		return cols
	case "State":
		_, test := synth.GenerateExtension(synth.ExtensionConfig{
			Type: ftype.State, TrainN: 0, TestN: n, Seed: seed})
		cols := make([]data.Column, len(test))
		for i := range test {
			cols[i] = test[i].Column
		}
		return cols
	default: // Gender
		cols := make([]data.Column, n)
		for i := range cols {
			vals := make([]string, 80)
			for j := range vals {
				if (i+j)%2 == 0 {
					vals[j] = "M"
				} else {
					vals[j] = "F"
				}
			}
			if i%3 == 0 {
				for j := range vals {
					if vals[j] == "M" {
						vals[j] = "Male"
					} else {
						vals[j] = "Female"
					}
				}
			}
			cols[i] = data.Column{Name: "gender", Values: vals}
		}
		return cols
	}
}

// sherlockMatches maps a probe kind to the Sherlock semantic types that
// count as a correct detection.
var sherlockMatches = map[string][]string{
	"Country": {"country", "nationality", "origin", "continent"},
	"State":   {"state", "region", "county"},
	"Gender":  {"gender", "sex"},
}

// Table14 runs Sherlock alone and Sherlock-on-top-of-OurRF over probe
// columns of three unambiguous semantic types.
func Table14(env *Env) (*Table14Result, error) {
	ourRF, err := TrainOurRF(env)
	if err != nil {
		return nil, fmt.Errorf("experiments: table14: %w", err)
	}
	sh := tools.Sherlock{}
	res := &Table14Result{}
	for i, kind := range []string{"Country", "State", "Gender"} {
		probes := semanticProbe(kind, 24, env.Cfg.Seed+int64(i)*7)
		row := Table14Row{Type: kind, TestExamples: len(probes)}
		accepted := map[string]bool{}
		for _, m := range sherlockMatches[kind] {
			accepted[m] = true
		}
		for c := range probes {
			sem := sh.PredictSemantic(&probes[c])
			correct := accepted[sem]
			if correct {
				row.SherlockCorrect++
			}
			if ourRF.Infer(&probes[c]) == ftype.Categorical {
				row.OurRFCategorical++
				if correct {
					row.SherlockGivenOurRF++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the complementarity study.
func (r *Table14Result) String() string {
	var b strings.Builder
	b.WriteString("Table 14: Sherlock semantic detection, alone and on top of OurRF's Categorical predictions\n\n")
	t := &table{header: []string{"Semantic type", "#Test", "Sherlock correct", "Recall",
		"OurRF -> Categorical", "Sherlock correct | OurRF"}}
	for _, row := range r.Rows {
		recall := 0.0
		if row.TestExamples > 0 {
			recall = float64(row.SherlockCorrect) / float64(row.TestExamples)
		}
		t.addRow(row.Type, fmt.Sprintf("%d", row.TestExamples),
			fmt.Sprintf("%d", row.SherlockCorrect), pct(recall),
			fmt.Sprintf("%d", row.OurRFCategorical),
			fmt.Sprintf("%d", row.SherlockGivenOurRF))
	}
	b.WriteString(t.String())
	b.WriteString("\n(The paper's takeaway: identical Sherlock recall with and without OurRF in front — the tools are complementary.)\n")
	return b.String()
}
