package sortinghat

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sortinghat/ftype"
)

// testModel trains one small shared model for the public API tests.
var testModelCache *Model

func testModel(t *testing.T) *Model {
	t.Helper()
	if testModelCache == nil {
		m, err := TrainDefault(&CorpusConfig{N: 1200, Seed: 7})
		if err != nil {
			t.Fatalf("TrainDefault: %v", err)
		}
		testModelCache = m
	}
	return testModelCache
}

func TestInferColumnObviousCases(t *testing.T) {
	m := testModel(t)
	cases := []struct {
		name   string
		values []string
		want   FeatureType
	}{
		{"salary", []string{"1500.50", "2750.25", "3100.00", "990.75", "1210.40", "2215.10"}, Numeric},
		{"gender", []string{"M", "F", "F", "M", "F", "M", "M", "F", "M", "F"}, Categorical},
		{"hire_date", []string{"2019-04-01", "2020-08-15", "2018-01-30", "2021-11-05"}, Datetime},
		{"homepage", []string{"https://www.example.com", "https://acme.org/a", "http://foo.net/x"}, URL},
	}
	for _, c := range cases {
		p := m.InferColumn(c.name, c.values)
		if p.Type != c.want {
			t.Errorf("InferColumn(%s) = %v, want %v", c.name, p.Type, c.want)
		}
		if p.Confidence <= 0 || p.Confidence > 1 {
			t.Errorf("%s: confidence = %f", c.name, p.Confidence)
		}
		if len(p.Probs) != ftype.NumBaseClasses {
			t.Errorf("%s: probs len = %d", c.name, len(p.Probs))
		}
	}
}

func TestInferDataset(t *testing.T) {
	m := testModel(t)
	csv := "id,amount,city\n1,10.5,Springfield\n2,20.25,Riverton\n3,11.75,Springfield\n4,19.25,Riverton\n5,14.00,Salem\n"
	preds, err := m.InferDataset("t.csv", strings.NewReader(csv))
	if err != nil {
		t.Fatalf("InferDataset: %v", err)
	}
	if len(preds) != 3 {
		t.Fatalf("preds = %d", len(preds))
	}
	if preds[1].Column != "amount" || preds[1].Type != Numeric {
		t.Errorf("amount -> %v", preds[1].Type)
	}
	if _, err := m.InferDataset("bad", strings.NewReader("")); err == nil {
		t.Error("empty CSV must error")
	}
}

func TestInferCSVFile(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv")
	content := "score,flag\n1.5,0\n2.5,1\n3.5,0\n4.5,1\n2.1,1\n3.3,0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	preds, err := m.InferCSVFile(path)
	if err != nil {
		t.Fatalf("InferCSVFile: %v", err)
	}
	if len(preds) != 2 {
		t.Fatalf("preds = %d", len(preds))
	}
	if _, err := m.InferCSVFile(path + ".nope"); err == nil {
		t.Error("missing file must error")
	}
}

func TestTrainCustomExamplesAndSaveLoad(t *testing.T) {
	examples := GenerateBenchmark(800, 3)
	m, err := Train(examples, Options{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	vals := []string{"92092", "78712", "92092", "60614", "78712", "92092", "10001"}
	a := m.InferColumn("zipcode", vals)
	b := back.InferColumn("zipcode", vals)
	if a.Type != b.Type {
		t.Errorf("save/load changed prediction %v -> %v", a.Type, b.Type)
	}
}

func TestTrainErrorsPublic(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Error("no examples must error")
	}
	bad := []Example{{Name: "x", Values: []string{"1"}, Label: ftype.Unknown}}
	if _, err := Train(bad, Options{}); err == nil {
		t.Error("invalid label must error")
	}
}

func TestGenerateBenchmarkAndEvaluate(t *testing.T) {
	examples := GenerateBenchmark(600, 5)
	if len(examples) != 600 {
		t.Fatalf("examples = %d", len(examples))
	}
	// Oracle scores 1.0.
	byKey := map[string]FeatureType{}
	keyOf := func(e Example) string {
		k := e.Name + "|"
		if len(e.Values) > 0 {
			k += e.Values[0]
		}
		return k
	}
	ambiguous := map[string]bool{}
	for _, e := range examples {
		k := keyOf(e)
		if prev, ok := byKey[k]; ok && prev != e.Label {
			ambiguous[k] = true
		}
		byKey[k] = e.Label
	}
	var clean []Example
	for _, e := range examples {
		if !ambiguous[keyOf(e)] {
			clean = append(clean, e)
		}
	}
	oracle := Evaluate(clean, func(name string, values []string) FeatureType {
		k := name + "|"
		if len(values) > 0 {
			k += values[0]
		}
		return byKey[k]
	})
	if oracle.NineClassAccuracy < 0.999 {
		t.Errorf("oracle accuracy = %f", oracle.NineClassAccuracy)
	}
	// A constant guesser scores the majority-class rate, well below 0.5.
	constant := Evaluate(examples, func(string, []string) FeatureType { return Numeric })
	if constant.NineClassAccuracy > 0.5 {
		t.Errorf("constant guesser accuracy = %f", constant.NineClassAccuracy)
	}
	if len(constant.PerClass) != ftype.NumBaseClasses {
		t.Errorf("per-class reports = %d", len(constant.PerClass))
	}
}

func TestEvaluateModelBeatsBaseline(t *testing.T) {
	m := testModel(t)
	heldOut := GenerateBenchmark(500, 31)
	rep := EvaluateModel(heldOut, m)
	if rep.NineClassAccuracy < 0.75 {
		t.Errorf("model accuracy on held-out corpus = %.3f", rep.NineClassAccuracy)
	}
}

func TestReportString(t *testing.T) {
	rep := Evaluate(GenerateBenchmark(200, 9), func(string, []string) FeatureType { return Numeric })
	s := rep.String()
	if !strings.Contains(s, "9-class accuracy") || !strings.Contains(s, "Numeric") {
		t.Errorf("report rendering missing parts:\n%s", s)
	}
}
