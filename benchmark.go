package sortinghat

import (
	"fmt"
	"strings"

	"sortinghat/ftype"
	"sortinghat/internal/ml/metrics"
	"sortinghat/internal/synth"
)

// GenerateBenchmark returns a labeled benchmark corpus of n columns
// (n <= 0 selects the paper-scale 9,921) generated deterministically from
// seed, as public Examples. This is the repository's stand-in for the
// paper's hand-labeled dataset and is the substrate for the public
// leaderboard: train on one split, evaluate with Evaluate on another.
func GenerateBenchmark(n int, seed int64) []Example {
	cfg := synth.DefaultCorpusConfig()
	if n > 0 {
		cfg.N = n
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	corpus := synth.GenerateCorpus(cfg)
	out := make([]Example, len(corpus))
	for i, c := range corpus {
		out[i] = Example{Name: c.Name, Values: c.Values, Label: c.Label}
	}
	return out
}

// InferFunc is a custom feature type inference approach under evaluation:
// any function from a raw column to a feature type can compete on the
// benchmark.
type InferFunc func(name string, values []string) FeatureType

// ClassReport holds the one-vs-rest leaderboard metrics for one class.
type ClassReport struct {
	Class     FeatureType
	Precision float64
	Recall    float64
	F1        float64
	Accuracy  float64 // binarized 2x2 diagonal accuracy
	Support   int
}

// Report is a leaderboard evaluation result: the 9-class accuracy plus
// per-class binarized metrics, exactly the metrics the paper's public
// leaderboard tracks.
type Report struct {
	NineClassAccuracy float64
	PerClass          []ClassReport
	Examples          int
}

// Evaluate scores an inference approach on labeled examples.
func Evaluate(examples []Example, infer InferFunc) Report {
	truth := make([]int, len(examples))
	pred := make([]int, len(examples))
	for i, ex := range examples {
		truth[i] = ex.Label.Index()
		pred[i] = infer(ex.Name, ex.Values).Index()
	}
	cm := metrics.Confusion(truth, pred, ftype.NumBaseClasses)
	rep := Report{NineClassAccuracy: cm.MultiAccuracy(), Examples: len(examples)}
	for _, cls := range ftype.BaseClasses() {
		s := cm.Binarized(cls.Index())
		rep.PerClass = append(rep.PerClass, ClassReport{
			Class: cls, Precision: s.Precision, Recall: s.Recall,
			F1: s.F1, Accuracy: s.Accuracy, Support: s.Support,
		})
	}
	return rep
}

// EvaluateModel scores a trained Model on labeled examples.
func EvaluateModel(examples []Example, m *Model) Report {
	return Evaluate(examples, func(name string, values []string) FeatureType {
		return m.InferColumn(name, values).Type
	})
}

// String renders the report in the leaderboard's table format.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "9-class accuracy: %.3f  (%d examples)\n", r.NineClassAccuracy, r.Examples)
	fmt.Fprintf(&b, "%-18s %-6s %-6s %-6s %-8s %s\n", "class", "P", "R", "F1", "bin-acc", "support")
	for _, c := range r.PerClass {
		fmt.Fprintf(&b, "%-18s %.3f  %.3f  %.3f  %.3f    %d\n",
			c.Class, c.Precision, c.Recall, c.F1, c.Accuracy, c.Support)
	}
	return b.String()
}
