// Package ftype defines the ML feature type vocabulary used throughout the
// SortingHat benchmark.
//
// The nine base classes follow Section 2.1 of "Towards Benchmarking Feature
// Type Inference for AutoML Platforms" (SIGMOD 2021). Two optional extension
// classes (Country and State) support the vocabulary-extension study from
// Appendix I.4 of the paper.
package ftype

import "fmt"

// FeatureType is an ML feature type: the semantic role a raw column plays
// when consumed by a downstream ML model, as opposed to its syntactic
// attribute type (int, float, string) in a database or file.
type FeatureType int

// The nine-class base label vocabulary, plus extension classes.
//
// The numeric values of the base classes double as class indices for the
// multi-class classification task (0..8).
const (
	// Numeric marks quantitative attributes directly usable as numeric
	// features (e.g. Salary), excluding IDs and integer-coded categories.
	Numeric FeatureType = iota
	// Categorical marks qualitative attributes from a discrete domain,
	// nominal or ordinal, including categories encoded as integers
	// (e.g. ZipCode).
	Categorical
	// Datetime marks date or timestamp values in any textual format.
	Datetime
	// Sentence marks free natural-language text with semantic meaning.
	Sentence
	// URL marks values following the URL standard (protocol + domain).
	URL
	// EmbeddedNumber marks values with a number embedded in messy syntax,
	// such as "USD 45", "30 Mhz" or "5,00,000", requiring extraction.
	EmbeddedNumber
	// List marks delimiter-separated collections of items, e.g. "ru; uk; mx".
	List
	// NotGeneralizable marks primary keys, constant columns, and other
	// attributes with no generalizable signal for a downstream model.
	NotGeneralizable
	// ContextSpecific is the catch-all for attributes requiring human
	// intervention: meaningless names, JSON dumps, addresses, etc.
	ContextSpecific

	// Country is an extension class for the Appendix I.4 study: country
	// names or ISO codes.
	Country
	// State is an extension class for the Appendix I.4 study: state or
	// province names and abbreviations.
	State
)

// Unknown is returned by tools whose vocabulary does not cover a column.
// It is never a valid class label in the benchmark.
const Unknown FeatureType = -1

// NumBaseClasses is the size of the paper's base label vocabulary.
const NumBaseClasses = 9

// BaseClasses lists the nine-class vocabulary in class-index order.
func BaseClasses() []FeatureType {
	return []FeatureType{
		Numeric, Categorical, Datetime, Sentence, URL,
		EmbeddedNumber, List, NotGeneralizable, ContextSpecific,
	}
}

var names = map[FeatureType]string{
	Unknown:          "Unknown",
	Numeric:          "Numeric",
	Categorical:      "Categorical",
	Datetime:         "Datetime",
	Sentence:         "Sentence",
	URL:              "URL",
	EmbeddedNumber:   "Embedded-Number",
	List:             "List",
	NotGeneralizable: "Not-Generalizable",
	ContextSpecific:  "Context-Specific",
	Country:          "Country",
	State:            "State",
}

var shortNames = map[FeatureType]string{
	Unknown:          "??",
	Numeric:          "NU",
	Categorical:      "CA",
	Datetime:         "DT",
	Sentence:         "ST",
	URL:              "URL",
	EmbeddedNumber:   "EN",
	List:             "LST",
	NotGeneralizable: "NG",
	ContextSpecific:  "CS",
	Country:          "CTY",
	State:            "STA",
}

// String returns the human-readable label used in the paper's tables.
func (t FeatureType) String() string {
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("FeatureType(%d)", int(t))
}

// Short returns the paper's two/three-letter abbreviation (NU, CA, DT, ...).
func (t FeatureType) Short() string {
	if s, ok := shortNames[t]; ok {
		return s
	}
	return fmt.Sprintf("T%d", int(t))
}

// Valid reports whether t is one of the nine base classes.
func (t FeatureType) Valid() bool {
	return t >= Numeric && t <= ContextSpecific
}

// Index returns the class index (0..8) for base classes, 9/10 for the
// extension classes, and -1 for Unknown.
func (t FeatureType) Index() int { return int(t) }

// Parse converts a label string (long or short form, case-insensitive word
// matching on the long form) back to a FeatureType. It returns Unknown and
// false if the string matches no known label.
func Parse(s string) (FeatureType, bool) {
	for t, n := range names {
		if s == n {
			return t, true
		}
	}
	for t, n := range shortNames {
		if s == n {
			return t, true
		}
	}
	return Unknown, false
}
