package ftype

import "testing"

func TestBaseClassesOrder(t *testing.T) {
	classes := BaseClasses()
	if len(classes) != NumBaseClasses {
		t.Fatalf("BaseClasses() returned %d classes, want %d", len(classes), NumBaseClasses)
	}
	for i, c := range classes {
		if c.Index() != i {
			t.Errorf("class %v has index %d, want %d", c, c.Index(), i)
		}
		if !c.Valid() {
			t.Errorf("class %v should be valid", c)
		}
	}
}

func TestStringAndShort(t *testing.T) {
	cases := []struct {
		t     FeatureType
		long  string
		short string
	}{
		{Numeric, "Numeric", "NU"},
		{Categorical, "Categorical", "CA"},
		{Datetime, "Datetime", "DT"},
		{Sentence, "Sentence", "ST"},
		{URL, "URL", "URL"},
		{EmbeddedNumber, "Embedded-Number", "EN"},
		{List, "List", "LST"},
		{NotGeneralizable, "Not-Generalizable", "NG"},
		{ContextSpecific, "Context-Specific", "CS"},
		{Country, "Country", "CTY"},
		{State, "State", "STA"},
		{Unknown, "Unknown", "??"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.long {
			t.Errorf("%d.String() = %q, want %q", c.t, got, c.long)
		}
		if got := c.t.Short(); got != c.short {
			t.Errorf("%d.Short() = %q, want %q", c.t, got, c.short)
		}
	}
}

func TestStringUnknownValue(t *testing.T) {
	bogus := FeatureType(97)
	if got := bogus.String(); got != "FeatureType(97)" {
		t.Errorf("bogus.String() = %q", got)
	}
	if got := bogus.Short(); got != "T97" {
		t.Errorf("bogus.Short() = %q", got)
	}
	if bogus.Valid() {
		t.Error("bogus type should not be valid")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, c := range BaseClasses() {
		if got, ok := Parse(c.String()); !ok || got != c {
			t.Errorf("Parse(%q) = %v,%v; want %v,true", c.String(), got, ok, c)
		}
		if got, ok := Parse(c.Short()); !ok || got != c {
			t.Errorf("Parse(%q) = %v,%v; want %v,true", c.Short(), got, ok, c)
		}
	}
	if _, ok := Parse("definitely-not-a-type"); ok {
		t.Error("Parse accepted garbage")
	}
}

func TestUnknownNotValid(t *testing.T) {
	if Unknown.Valid() {
		t.Error("Unknown must not be a valid base class")
	}
	if Country.Valid() || State.Valid() {
		t.Error("extension classes are not base classes")
	}
	if Unknown.Index() != -1 {
		t.Errorf("Unknown.Index() = %d, want -1", Unknown.Index())
	}
}
