package ftype_test

import (
	"fmt"

	"sortinghat/ftype"
)

func ExampleParse() {
	t, ok := ftype.Parse("Categorical")
	fmt.Println(t, ok, t.Short())
	u, ok := ftype.Parse("EN")
	fmt.Println(u, ok)
	// Output:
	// Categorical true CA
	// Embedded-Number true
}

func ExampleFeatureType_Index() {
	for _, t := range ftype.BaseClasses()[:3] {
		fmt.Println(t.Index(), t)
	}
	// Output:
	// 0 Numeric
	// 1 Categorical
	// 2 Datetime
}
