# Developer entry points. `make check` is what CI runs; it must pass
# before any change lands.

GO ?= go

# The serve-path benchmark set shared by bench-run/bench-snapshot/bench-gate
# and profile: everything the benchmark-regression gate watches. Fixed
# -benchtime keeps allocs/op and B/op reproducible across machines.
BENCH_SET  = ^(BenchmarkServeInfer|BenchmarkFeaturizeColumn|BenchmarkTreePredict)$$
BENCH_TIME = 100x

.PHONY: build test race vet shvet shvet-strict shvet-fix shvet-fix-clean \
	check bench smoke smoke-fleet profile chaos soak bench-run \
	bench-snapshot bench-gate bench-gate-trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The forest trains on a goroutine pool; every change runs under the race
# detector so scheduling hazards surface before they corrupt results.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Repo-specific determinism & correctness analyzers (internal/analysis).
# Exits non-zero on any unsuppressed finding; see README "Static analysis
# & determinism policy" for the suppression directive.
shvet:
	$(GO) run ./cmd/shvet ./...

# Strict machine-readable gate: findings as stable JSON, diffed against
# the committed (empty) baseline so only brand-new findings fail. The
# report lands in shvet-findings.json (gitignored; CI uploads it as an
# artifact).
shvet-strict:
	$(GO) run ./cmd/shvet -json -baseline shvet.baseline.json ./... > shvet-findings.json

# Apply every suggested fix in place (cancel-leak, body-close,
# timer-stop); suppressed findings are refused, overlapping fixes are
# skipped, and every rewritten file is gofmt-formatted.
shvet-fix:
	$(GO) run ./cmd/shvet -fix ./...

# Autofix cleanliness gate: on a committed tree, -fix -dry-run must
# print no diffs and exit 0 — every fixable finding has either been
# applied (run `make shvet-fix`) or suppressed with a reason.
shvet-fix-clean:
	$(GO) run ./cmd/shvet -fix -dry-run ./...

check: build vet shvet shvet-strict shvet-fix-clean test race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Run the gated serve-path benchmark set, teeing raw output into
# bench-latest.txt (gitignored; CI uploads it as an artifact).
bench-run:
	$(GO) test -bench '$(BENCH_SET)' -benchmem -benchtime=$(BENCH_TIME) -run '^$$' . | tee bench-latest.txt

# Record the current benchmark numbers as a labeled snapshot in the
# committed baseline, e.g.: make bench-snapshot LABEL=pr7-after
LABEL ?= local
bench-snapshot: bench-run
	$(GO) run ./cmd/benchdiff -update BENCH_serve.json -label '$(LABEL)' -input bench-latest.txt

# The benchmark-regression gate CI runs: compare against the newest
# committed snapshot. allocs/op and B/op are gated at 10%; ns/op is
# reported but not gated (it is machine-dependent).
bench-gate: bench-run
	$(GO) run ./cmd/benchdiff -baseline BENCH_serve.json -tolerance 10% -input bench-latest.txt

# Tracing-overhead gate: with tracing disabled (no span in the context,
# as in the InferBatch benchmarks), the per-request instrumentation added
# for distributed tracing must cost zero additional allocs/op on the
# serve hot path. Gated at 0% against the committed baseline; the http
# sub-benchmark (tracing on) is deliberately outside -only.
bench-gate-trace:
	$(GO) test -bench 'BenchmarkServeInfer/(workers|cached)' -benchmem -benchtime=$(BENCH_TIME) -run '^$$' . | tee bench-trace.txt
	$(GO) run ./cmd/benchdiff -baseline BENCH_serve.json -tolerance 0% -metrics allocs \
		-only 'BenchmarkServeInfer/(workers|cached)' -input bench-trace.txt

# CPU and heap profiles of the serving hot path: runs the same benchmark
# set the regression gate watches, with the profiler on, writing into
# ./profiles/ (gitignored). Inspect with `go tool pprof profiles/cpu.out`
# (or mem.out); for a live process use `sortinghatd -pprof` and go tool
# pprof's HTTP mode instead. The test binary lands in profiles/ too, so
# pprof can resolve symbols without rebuilding.
profile:
	mkdir -p profiles
	$(GO) test -bench '$(BENCH_SET)' -benchmem -run '^$$' \
		-cpuprofile=profiles/cpu.out -memprofile=profiles/mem.out \
		-o profiles/bench.test .

# Chaos suite: the resilience layer (breaker, gate, retry budget, AIMD
# limiter, backoff, fault injector, rule fallback) plus the serve- and
# gateway-level fault drills — replica kills, brownouts, retry storms —
# under the race detector; panic recovery and load shedding are only
# trustworthy race-clean.
chaos:
	$(GO) test -race ./internal/resilience/... ./internal/serve ./internal/gateway

# Overload soak: a live three-replica fleet with injected featurize
# latency, concurrent clients, and a mid-run replica kill, for
# SOAK_DURATION (default 15s in the test). Every answer must be a
# complete ordered 200 or an accounted overload status (429/503/504).
SOAK_DURATION ?= 20s
soak:
	SOAK=1 SOAK_DURATION=$(SOAK_DURATION) $(GO) test -race -run TestFleetSoak -count=1 -timeout 180s -v ./internal/gateway

# End-to-end serving smoke: train a small model, boot sortinghatd, probe
# /healthz and /v1/infer (twice, to exercise the cache), check /metrics,
# then drill degraded mode (-fault-spec) and a hot model reload
# (POST /admin/reload). CI runs this as its own job. Phases, host, and
# port are selectable: see the SMOKE_* variables in scripts/smoke.sh.
smoke:
	sh ./scripts/smoke.sh

# Fleet smoke: boot 2 sortinghatd replicas plus a sortinghatgw in front,
# shard a batch across the fleet, and assert the replicas' prediction
# caches hold disjoint shards of the column space (every distinct column
# cached on exactly one replica; a repeat batch through the gateway is
# all cache hits). CI runs this as the smoke-fleet job.
smoke-fleet:
	SMOKE_PHASES=fleet sh ./scripts/smoke.sh
